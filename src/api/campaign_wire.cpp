#include "api/campaign_wire.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <utility>

#include "common/check.hpp"

namespace ftsched {

namespace wire {

std::string format_double(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%a", value);
  return buffer;
}

double parse_double(const std::string& token, const char* what) {
  const char* text = token.c_str();
  char* end = nullptr;
  const double value = std::strtod(text, &end);
  CAFT_CHECK_MSG(end != text && *end == '\0',
                 std::string("campaign wire: malformed ") + what + " '" +
                     token + "'");
  return value;
}

std::size_t parse_size(const std::string& token, const char* what) {
  CAFT_CHECK_MSG(!token.empty() &&
                     token.find_first_not_of("0123456789") ==
                         std::string::npos,
                 std::string("campaign wire: malformed ") + what + " '" +
                     token + "'");
  return static_cast<std::size_t>(std::stoull(token));
}

bool parse_bool(const std::string& token, const char* what) {
  CAFT_CHECK_MSG(token == "0" || token == "1",
                 std::string("campaign wire: malformed ") + what + " '" +
                     token + "' (expected 0|1)");
  return token == "1";
}

std::string next_token(std::istringstream& line, const char* what) {
  std::string token;
  CAFT_CHECK_MSG(static_cast<bool>(line >> token),
                 std::string("campaign wire: missing ") + what);
  return token;
}

void check_magic_line(const std::string& line, const char* magic) {
  const std::string expected = std::string(magic) + " v1";
  if (line == expected) return;
  // Version skew before corruption: `<magic> v<anything-else>` is a
  // well-formed document from a writer of another protocol generation —
  // tell the peer to speak v1 instead of reporting a parse failure.
  if (line.rfind(std::string(magic) + " v", 0) == 0)
    throw caft::CheckError(
        "campaign wire: unsupported document version '" + line +
        "' — this reader speaks v1 (expected '" + expected + "')");
  throw caft::CheckError("campaign wire: bad magic line '" + line +
                         "' (expected '" + expected + "')");
}

void expect_magic(std::istream& is, const char* magic) {
  std::string line;
  CAFT_CHECK_MSG(static_cast<bool>(std::getline(is, line)),
                 "campaign wire: empty document");
  check_magic_line(line, magic);
}

}  // namespace wire

using namespace wire;

namespace {

const char* sampler_kind_name(SamplerSpec::Kind kind) {
  switch (kind) {
    case SamplerSpec::Kind::kUniformK:
      return "uniform-k";
    case SamplerSpec::Kind::kExponential:
      return "exponential";
    case SamplerSpec::Kind::kWeibull:
      return "weibull";
    case SamplerSpec::Kind::kWindow:
      return "window";
    case SamplerSpec::Kind::kGroups:
      return "groups";
  }
  throw caft::CheckError("campaign wire: unhandled sampler kind");
}

SamplerSpec::Kind sampler_kind_from(const std::string& name) {
  if (name == "uniform-k") return SamplerSpec::Kind::kUniformK;
  if (name == "exponential") return SamplerSpec::Kind::kExponential;
  if (name == "weibull") return SamplerSpec::Kind::kWeibull;
  if (name == "window") return SamplerSpec::Kind::kWindow;
  if (name == "groups") return SamplerSpec::Kind::kGroups;
  throw caft::CheckError("campaign wire: unknown sampler kind '" + name +
                         "'");
}

}  // namespace

namespace wire {

void write_sampler_line(std::ostream& os, const SamplerSpec& sampler) {
  os << "sampler " << sampler_kind_name(sampler.kind) << " "
     << sampler.failures << " " << format_double(sampler.rate) << " "
     << format_double(sampler.shape) << " " << format_double(sampler.scale)
     << " " << format_double(sampler.horizon) << " "
     << format_double(sampler.theta_lo) << " "
     << format_double(sampler.theta_hi) << " " << sampler.group_size << " "
     << format_double(sampler.group_prob) << "\n";
}

void read_sampler_line(std::istringstream& fields, SamplerSpec& sampler) {
  sampler.kind = sampler_kind_from(next_token(fields, "sampler kind"));
  sampler.failures =
      parse_size(next_token(fields, "sampler failures"), "failures");
  sampler.rate = parse_double(next_token(fields, "sampler rate"), "rate");
  sampler.shape = parse_double(next_token(fields, "sampler shape"), "shape");
  sampler.scale = parse_double(next_token(fields, "sampler scale"), "scale");
  sampler.horizon =
      parse_double(next_token(fields, "sampler horizon"), "horizon");
  sampler.theta_lo =
      parse_double(next_token(fields, "sampler theta-lo"), "theta-lo");
  sampler.theta_hi =
      parse_double(next_token(fields, "sampler theta-hi"), "theta-hi");
  sampler.group_size =
      parse_size(next_token(fields, "sampler group-size"), "group-size");
  sampler.group_prob =
      parse_double(next_token(fields, "sampler group-prob"), "group-prob");
}

void write_request_line(std::ostream& os, const ScheduleRequest& request) {
  os << "request ";
  if (request.eps.has_value())
    os << *request.eps;
  else
    os << "-";
  os << " ";
  if (request.model.has_value())
    os << (*request.model == caft::CommModelKind::kOnePort ? "oneport"
                                                           : "macro");
  else
    os << "-";
  os << " " << (request.validate ? 1 : 0) << " "
     << (request.support_mode == caft::CaftSupportMode::kDirect
             ? "direct"
             : "transitive")
     << " " << (request.one_to_one ? 1 : 0) << " " << request.batch_size
     << " " << (request.minimize_start_time ? 1 : 0) << "\n";
}

void read_request_line(std::istringstream& fields, ScheduleRequest& request) {
  const std::string eps = next_token(fields, "request eps");
  if (eps == "-")
    request.eps.reset();
  else
    request.eps = parse_size(eps, "request eps");
  const std::string model = next_token(fields, "request model");
  if (model == "-") {
    request.model.reset();
  } else if (model == "oneport") {
    request.model = caft::CommModelKind::kOnePort;
  } else if (model == "macro") {
    request.model = caft::CommModelKind::kMacroDataflow;
  } else {
    throw caft::CheckError("campaign wire: unknown model '" + model + "'");
  }
  request.validate =
      parse_bool(next_token(fields, "request validate"), "validate");
  const std::string support = next_token(fields, "request support");
  CAFT_CHECK_MSG(support == "direct" || support == "transitive",
                 "campaign wire: unknown support mode '" + support + "'");
  request.support_mode = support == "direct"
                             ? caft::CaftSupportMode::kDirect
                             : caft::CaftSupportMode::kTransitive;
  request.one_to_one =
      parse_bool(next_token(fields, "request one-to-one"), "one-to-one");
  request.batch_size =
      parse_size(next_token(fields, "request batch-size"), "batch-size");
  request.minimize_start_time =
      parse_bool(next_token(fields, "request mst"), "mst");
}

}  // namespace wire

void write_campaign_work_order(std::ostream& os,
                               const CampaignWorkOrder& order) {
  os << "caft-campaign-work v1\n";
  os << "instance " << order.instance_path << "\n";
  os << "algorithm " << order.algorithm << "\n";
  os << "block " << order.first << " " << order.count << "\n";
  os << "replays " << order.spec.replays << "\n";
  os << "seed " << order.spec.seed << "\n";
  os << "quantiles " << order.spec.quantiles.size();
  for (const double q : order.spec.quantiles) os << " " << format_double(q);
  os << "\n";
  os << "theta-buckets " << order.spec.theta_buckets << "\n";
  os << "exact " << (order.spec.exact ? 1 : 0) << "\n";
  write_sampler_line(os, order.spec.sampler);
  write_request_line(os, order.spec.request);
  os << "exec " << order.threads << " "
     << (order.engine == caft::CampaignEngine::kNaive ? "naive"
                                                      : "incremental")
     << " "
     << (order.memo == caft::CampaignMemo::kScratch ? "scratch" : "shared")
     << " " << order.block << " " << order.memo_capacity << " "
     << order.memo_shards << " " << (order.adaptive_snapshots ? 1 : 0)
     << "\n";
  os << "expect " << format_double(order.expect_makespan) << " "
     << format_double(order.expect_horizon) << "\n";
  os << "end\n";
}

CampaignWorkOrder read_campaign_work_order(std::istream& is) {
  expect_magic(is, "caft-campaign-work");
  CampaignWorkOrder order;
  order.spec.algorithms.clear();  // the order names exactly one algorithm
  bool saw_end = false;
  bool saw_instance = false, saw_algorithm = false, saw_block = false;
  std::string line;
  while (!saw_end && std::getline(is, line)) {
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::string key;
    fields >> key;
    if (key == "end") {
      saw_end = true;
    } else if (key == "instance") {
      std::string rest;
      std::getline(fields, rest);
      const std::size_t start = rest.find_first_not_of(' ');
      CAFT_CHECK_MSG(start != std::string::npos,
                     "campaign wire: empty instance path");
      order.instance_path = rest.substr(start);
      saw_instance = true;
    } else if (key == "algorithm") {
      order.algorithm = next_token(fields, "algorithm name");
      order.spec.algorithms = {order.algorithm};
      saw_algorithm = true;
    } else if (key == "block") {
      order.first = parse_size(next_token(fields, "block first"), "block first");
      order.count = parse_size(next_token(fields, "block count"), "block count");
      saw_block = true;
    } else if (key == "replays") {
      order.spec.replays =
          parse_size(next_token(fields, "replays"), "replays");
    } else if (key == "seed") {
      const std::string token = next_token(fields, "seed");
      CAFT_CHECK_MSG(!token.empty() &&
                         token.find_first_not_of("0123456789") ==
                             std::string::npos,
                     "campaign wire: malformed seed '" + token + "'");
      order.spec.seed = std::stoull(token);
    } else if (key == "quantiles") {
      const std::size_t n =
          parse_size(next_token(fields, "quantile count"), "quantile count");
      order.spec.quantiles.clear();
      order.spec.quantiles.reserve(n);
      for (std::size_t i = 0; i < n; ++i)
        order.spec.quantiles.push_back(
            parse_double(next_token(fields, "quantile"), "quantile"));
    } else if (key == "theta-buckets") {
      order.spec.theta_buckets =
          parse_size(next_token(fields, "theta-buckets"), "theta-buckets");
    } else if (key == "exact") {
      order.spec.exact = parse_bool(next_token(fields, "exact"), "exact");
    } else if (key == "sampler") {
      read_sampler_line(fields, order.spec.sampler);
    } else if (key == "request") {
      read_request_line(fields, order.spec.request);
    } else if (key == "exec") {
      order.threads = parse_size(next_token(fields, "exec threads"), "threads");
      const std::string engine = next_token(fields, "exec engine");
      CAFT_CHECK_MSG(engine == "naive" || engine == "incremental",
                     "campaign wire: unknown engine '" + engine + "'");
      order.engine = engine == "naive" ? caft::CampaignEngine::kNaive
                                       : caft::CampaignEngine::kIncremental;
      const std::string memo = next_token(fields, "exec memo");
      CAFT_CHECK_MSG(memo == "scratch" || memo == "shared",
                     "campaign wire: unknown memo '" + memo + "'");
      order.memo = memo == "scratch" ? caft::CampaignMemo::kScratch
                                     : caft::CampaignMemo::kShared;
      order.block = parse_size(next_token(fields, "exec block"), "block");
      order.memo_capacity = parse_size(
          next_token(fields, "exec memo-capacity"), "memo-capacity");
      order.memo_shards =
          parse_size(next_token(fields, "exec memo-shards"), "memo-shards");
      order.adaptive_snapshots =
          parse_bool(next_token(fields, "exec adaptive"), "adaptive");
    } else if (key == "expect") {
      order.expect_makespan =
          parse_double(next_token(fields, "expect makespan"), "makespan");
      order.expect_horizon =
          parse_double(next_token(fields, "expect horizon"), "horizon");
    } else {
      throw caft::CheckError("campaign wire: unknown work-order key '" + key +
                             "'");
    }
  }
  CAFT_CHECK_MSG(saw_end, "campaign wire: truncated work order (no 'end')");
  CAFT_CHECK_MSG(saw_instance, "campaign wire: work order names no instance");
  CAFT_CHECK_MSG(saw_algorithm,
                 "campaign wire: work order names no algorithm");
  CAFT_CHECK_MSG(saw_block, "campaign wire: work order has no block range");
  CAFT_CHECK_MSG(order.count > 0,
                 "campaign wire: work-order block is empty");
  return order;
}

namespace {

void write_record_line(std::ostream& os, const caft::ReplayRecord& record) {
  os << "r " << (record.success ? 1 : 0) << " "
     << (record.order_deadlock ? 1 : 0) << " "
     << format_double(record.latency) << " " << record.delivered_messages
     << " " << record.order_relaxations << " " << record.failed_count
     << "\n";
}

void write_counts_telemetry_timing(std::ostream& os, std::size_t records,
                                   std::size_t successes,
                                   const caft::CampaignTelemetry& telemetry,
                                   const WorkerTiming& timing) {
  os << "counts " << records << " " << successes << "\n";
  os << "telemetry " << telemetry.memo_lookups << " " << telemetry.memo_hits
     << " " << telemetry.memo_evictions << " " << telemetry.memo_entries
     << " " << telemetry.snapshots << "\n";
  if (timing.present) {
    os << "timing " << format_double(timing.wall_seconds) << " "
       << format_double(timing.schedule_seconds) << " "
       << format_double(timing.replay_seconds) << "\n";
  }
}

}  // namespace

void write_campaign_partial(std::ostream& os,
                            const CampaignPartialResult& partial) {
  os << "caft-campaign-partial v1\n";
  os << "algorithm " << partial.algorithm << "\n";
  os << "block " << partial.first << " " << partial.count << "\n";
  write_counts_telemetry_timing(os, partial.records.size(),
                                partial.successes, partial.telemetry,
                                partial.timing);
  os << "records " << partial.records.size() << "\n";
  for (const caft::ReplayRecord& record : partial.records)
    write_record_line(os, record);
  os << "end\n";
}

void write_campaign_partial_header(std::ostream& os,
                                   const std::string& algorithm,
                                   std::size_t first, std::size_t count) {
  os << "caft-campaign-partial v1\n";
  os << "algorithm " << algorithm << "\n";
  os << "block " << first << " " << count << "\n";
  os << "records " << count << "\n";
}

void write_campaign_partial_records(std::ostream& os,
                                    const caft::ReplayRecord* records,
                                    std::size_t count) {
  for (std::size_t i = 0; i < count; ++i)
    write_record_line(os, records[i]);
}

void write_campaign_partial_footer(std::ostream& os, std::size_t records,
                                   std::size_t successes,
                                   const caft::CampaignTelemetry& telemetry,
                                   const WorkerTiming& timing) {
  write_counts_telemetry_timing(os, records, successes, telemetry, timing);
  os << "end\n";
}

void CampaignPartialReader::fail(const std::string& why) noexcept {
  if (error_.empty()) error_ = why;
  buffer_.clear();
  buffer_.shrink_to_fit();
}

void CampaignPartialReader::feed(const char* data, std::size_t size) noexcept {
  if (failed()) return;  // the poll loop keeps draining; we stop parsing
  std::size_t consumed = 0;
  while (consumed < size) {
    const void* newline =
        std::memchr(data + consumed, '\n', size - consumed);
    if (newline == nullptr) {
      buffer_.append(data + consumed, size - consumed);
      return;
    }
    const std::size_t line_end =
        static_cast<std::size_t>(static_cast<const char*>(newline) - data);
    buffer_.append(data + consumed, line_end - consumed);
    consumed = line_end + 1;
    try {
      consume_line(buffer_);
    } catch (const std::exception& parse_error) {
      fail(parse_error.what());
      return;
    }
    buffer_.clear();
  }
}

void CampaignPartialReader::consume_line(const std::string& line) {
  if (saw_end_) return;  // trailing output after 'end' is ignored
  if (!saw_magic_) {
    check_magic_line(line, "caft-campaign-partial");
    saw_magic_ = true;
    return;
  }
  // Inside the record list every line must be a record line — an empty or
  // foreign line there is corruption, not formatting slack.
  if (saw_records_ && partial_.records.size() < records_expected_) {
    std::istringstream record_fields(line);
    const std::string tag = next_token(record_fields, "record tag");
    CAFT_CHECK_MSG(tag == "r",
                   "campaign wire: bad record line '" + line + "'");
    caft::ReplayRecord record;
    record.success =
        parse_bool(next_token(record_fields, "record success"), "success");
    record.order_deadlock =
        parse_bool(next_token(record_fields, "record deadlock"), "deadlock");
    record.latency =
        parse_double(next_token(record_fields, "record latency"), "latency");
    record.delivered_messages =
        parse_size(next_token(record_fields, "record delivered"), "delivered");
    record.order_relaxations = parse_size(
        next_token(record_fields, "record relaxations"), "relaxations");
    record.failed_count =
        parse_size(next_token(record_fields, "record failed"), "failed");
    partial_.records.push_back(record);
    return;
  }
  if (line.empty()) return;
  std::istringstream fields(line);
  std::string key;
  fields >> key;
  if (key == "end") {
    saw_end_ = true;
  } else if (key == "algorithm") {
    partial_.algorithm = next_token(fields, "algorithm name");
  } else if (key == "block") {
    CAFT_CHECK_MSG(!saw_records_,
                   "campaign wire: block range after the record list");
    partial_.first =
        parse_size(next_token(fields, "block first"), "block first");
    partial_.count =
        parse_size(next_token(fields, "block count"), "block count");
    // A corrupt range whose end overflows size_t would wrap every
    // downstream [first, first + count) computation — reject it here, so
    // the coordinator retries the worker instead of folding a lie.
    CAFT_CHECK_MSG(partial_.count <=
                       std::numeric_limits<std::size_t>::max() -
                           partial_.first,
                   "campaign wire: block range [" +
                       std::to_string(partial_.first) + ", +" +
                       std::to_string(partial_.count) +
                       ") overflows size_t");
    saw_block_ = true;
  } else if (key == "counts") {
    declared_records_ =
        parse_size(next_token(fields, "counts replays"), "counts replays");
    declared_successes_ = parse_size(next_token(fields, "counts successes"),
                                     "counts successes");
    saw_counts_ = true;
  } else if (key == "telemetry") {
    partial_.telemetry.memo_lookups = parse_size(
        next_token(fields, "telemetry lookups"), "telemetry lookups");
    partial_.telemetry.memo_hits =
        parse_size(next_token(fields, "telemetry hits"), "telemetry hits");
    partial_.telemetry.memo_evictions = parse_size(
        next_token(fields, "telemetry evictions"), "telemetry evictions");
    partial_.telemetry.memo_entries = parse_size(
        next_token(fields, "telemetry entries"), "telemetry entries");
    partial_.telemetry.snapshots = parse_size(
        next_token(fields, "telemetry snapshots"), "telemetry snapshots");
  } else if (key == "timing") {
    // Optional since PR 6; a document without it parses fine.
    partial_.timing.wall_seconds =
        parse_double(next_token(fields, "timing wall"), "timing wall");
    partial_.timing.schedule_seconds = parse_double(
        next_token(fields, "timing schedule"), "timing schedule");
    partial_.timing.replay_seconds =
        parse_double(next_token(fields, "timing replay"), "timing replay");
    partial_.timing.present = true;
  } else if (key == "records") {
    CAFT_CHECK_MSG(!saw_records_, "campaign wire: duplicate records header");
    CAFT_CHECK_MSG(saw_block_,
                   "campaign wire: records header before the block range");
    records_expected_ =
        parse_size(next_token(fields, "record count"), "record count");
    // Validate the header against the echoed block *before* reserving —
    // a corrupt count must not become a giant allocation (or a silently
    // short block the fold would accept).
    CAFT_CHECK_MSG(records_expected_ == partial_.count,
                   "campaign wire: records header declares " +
                       std::to_string(records_expected_) +
                       " records for a block of " +
                       std::to_string(partial_.count));
    partial_.records.reserve(records_expected_);
    saw_records_ = true;
  } else {
    throw caft::CheckError("campaign wire: unknown partial key '" + key +
                           "'");
  }
}

CampaignPartialResult CampaignPartialReader::take() {
  if (failed()) throw caft::CheckError(error_);
  if (!buffer_.empty()) {
    // An unterminated trailing line: a mid-line truncation unless the
    // document already ended (then it is ignorable junk, e.g. a shell
    // wrapper's unterminated noise).
    CAFT_CHECK_MSG(saw_end_, "campaign wire: truncated partial (unterminated "
                             "line '" + buffer_ + "')");
  }
  CAFT_CHECK_MSG(saw_magic_, "campaign wire: empty document");
  CAFT_CHECK_MSG(saw_end_, "campaign wire: truncated partial (no 'end')");
  CAFT_CHECK_MSG(saw_block_, "campaign wire: partial has no block range");
  CAFT_CHECK_MSG(saw_counts_, "campaign wire: partial has no counts line");
  CAFT_CHECK_MSG(partial_.records.size() == partial_.count,
                 "campaign wire: partial carries " +
                     std::to_string(partial_.records.size()) +
                     " records for a block of " +
                     std::to_string(partial_.count));
  CAFT_CHECK_MSG(declared_records_ == partial_.records.size(),
                 "campaign wire: counts line disagrees with the record list");
  std::size_t successes = 0;
  for (const caft::ReplayRecord& record : partial_.records)
    if (record.success) ++successes;
  CAFT_CHECK_MSG(successes == declared_successes_,
                 "campaign wire: counts line declares " +
                     std::to_string(declared_successes_) +
                     " successes but the records fold to " +
                     std::to_string(successes));
  partial_.successes = successes;
  return std::move(partial_);
}

CampaignPartialResult read_campaign_partial(std::istream& is) {
  // One parser: the whole-document reader is the incremental reader fed in
  // chunks, so the strictness contract cannot drift between the two.
  CampaignPartialReader reader;
  char buffer[4096];
  while (true) {
    is.read(buffer, sizeof buffer);
    const std::streamsize n = is.gcount();
    if (n > 0) reader.feed(buffer, static_cast<std::size_t>(n));
    if (n < static_cast<std::streamsize>(sizeof buffer)) break;
  }
  return reader.take();
}

}  // namespace ftsched
