/// \file api/api.hpp
/// Umbrella header of the `ftsched::` facade — the stable public surface of
/// the library. Consumers outside src/ (tools, examples, benches, services)
/// include this (or the individual api/ headers) and obtain algorithms via
/// SchedulerRegistry; the per-algorithm headers under algo/ are the
/// implementation layer the adapters call.
///
///   ftsched::Instance   — owning graph+platform+costs bundle, load/save,
///                         validation (api/instance.hpp)
///   ftsched::Scheduler  — polymorphic algorithm contract + SchedulerRegistry
///                         (api/scheduler.hpp)
///   ftsched::Session    — batch/campaign service facade (api/session.hpp)
#pragma once

#include "api/instance.hpp"
#include "api/scheduler.hpp"
#include "api/session.hpp"
