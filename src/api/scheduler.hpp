/// \file api/scheduler.hpp
/// The polymorphic algorithm contract of the `ftsched::` facade and the
/// registry that discovers implementations by name.
///
/// The paper evaluates four interchangeable policies (CAFT, FTSA, FTBAR,
/// HEFT) over one instance/objective contract; this header is that contract
/// made executable. A `Scheduler` maps an `Instance` (+ per-call
/// `ScheduleRequest` overrides) to a `ScheduleResult` — the committed
/// schedule plus the metrics and validator verdict every consumer used to
/// recompute by hand. The `SchedulerRegistry` holds one stateless adapter
/// per algorithm under its canonical name ("caft", "caft-batch", "ftsa",
/// "ftbar", "heft"), so CLIs, the experiment runner, examples, benches and
/// tests all dispatch through `make(name)` / `for_each` instead of
/// re-implementing `if (algo == "heft") ...` string ladders.
///
/// Adding an algorithm = one adapter class + one registration line (see
/// api/adapters.cpp, or FTSCHED_REGISTER_SCHEDULER for out-of-library
/// schedulers); nothing else in the repo needs touching.
#pragma once

#include <any>
#include <cstddef>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "algo/caft.hpp"  // CaftSupportMode, SchedulerOptions (via list_core)
#include "api/instance.hpp"
#include "sched/schedule.hpp"
#include "sched/validator.hpp"

namespace ftsched {

/// Per-call overrides and per-algorithm knobs. Fields an algorithm does not
/// use are ignored (capabilities() says what is honoured).
struct ScheduleRequest {
  /// Overrides the instance's ε when set.
  std::optional<std::size_t> eps;
  /// Overrides the instance's communication model when set.
  std::optional<caft::CommModelKind> model;
  /// Run the structural/one-port validator on the result (cheap relative to
  /// scheduling; the verdict lands in ScheduleResult::validation). Off for
  /// hot loops that validate by other means (e.g. the experiment runner).
  bool validate = true;

  // --- CAFT / CAFT-batch knobs (see algo/caft.hpp for semantics).
  caft::CaftSupportMode support_mode = caft::CaftSupportMode::kTransitive;
  bool one_to_one = true;
  std::size_t batch_size = 10;

  // --- FTBAR knob: the Minimize-Start-Time duplication pass.
  bool minimize_start_time = true;
};

/// What an algorithm can do — drives CLI help, test generation and the
/// guard-rails of Session (e.g. campaigning a non-ε-aware scheduler).
struct SchedulerCapabilities {
  /// Honours ε > 0 (ε+1 replicas, Proposition 5.2 guarantee). HEFT does
  /// not: it always emits one replica per task.
  bool supports_eps = false;
  /// Builds contention-aware one-to-one channels (equation (7)).
  bool contention_aware = false;
  /// May emit replicas beyond the ε+1 primaries (FTBAR's MST duplicates).
  bool emits_duplicates = false;
};

/// Everything one scheduling run produces. The schedule references the
/// Instance's graph/platform — a result must not outlive its instance.
struct ScheduleResult {
  explicit ScheduleResult(caft::Schedule schedule)
      : schedule(std::move(schedule)) {}

  caft::Schedule schedule;
  std::string algorithm;            ///< registry name that produced it
  std::size_t eps = 0;              ///< ε the run actually used
  double makespan = 0.0;            ///< zero-crash latency L(0)
  double upper_bound = 0.0;         ///< all-replicas latency bound
  std::size_t messages = 0;         ///< inter-processor messages
  double message_volume = 0.0;      ///< total inter-processor data volume
  bool validated = false;           ///< whether the validator ran
  caft::ValidationResult validation;

  /// Per-algorithm run stats behind a typed accessor — e.g.
  /// `result.stats_as<caft::CaftRunStats>()` after a caft/caft-batch run.
  /// Null when the algorithm publishes none (or the type does not match).
  std::any stats;
  template <typename S>
  [[nodiscard]] const S* stats_as() const {
    return std::any_cast<S>(&stats);
  }

  /// True when the result is usable: validator clean (or not requested).
  [[nodiscard]] bool ok() const { return !validated || validation.ok(); }
};

/// One algorithm behind the facade. Implementations are stateless and
/// shareable (schedule() is const and thread-compatible).
class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Canonical registry name ("caft", "ftsa", ...).
  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual SchedulerCapabilities capabilities() const = 0;

  /// Validates the instance (Instance::validate with the resolved ε), runs
  /// the algorithm, fills the metrics, and runs the validator when
  /// requested. Template method: algorithms only implement run().
  [[nodiscard]] ScheduleResult schedule(const Instance& instance,
                                        const ScheduleRequest& request =
                                            {}) const;

 protected:
  /// Algorithm hook. `options` carries the resolved (ε, model) pair; the
  /// raw request is passed through for algorithm-specific knobs. `stats`
  /// may receive a typed stats object (std::any).
  [[nodiscard]] virtual caft::Schedule run(const Instance& instance,
                                           const caft::SchedulerOptions& options,
                                           const ScheduleRequest& request,
                                           std::any* stats) const = 0;

  /// ε the algorithm will actually honour; HEFT overrides this to pin 0.
  [[nodiscard]] virtual std::size_t resolve_eps(const Instance& instance,
                                                const ScheduleRequest& request)
      const;
};

/// Uppercased registry name ("caft" -> "CAFT", "caft-batch" ->
/// "CAFT-BATCH") — the display convention of every report table.
[[nodiscard]] std::string display_name(const std::string& algorithm);

/// Name-keyed catalogue of schedulers. The five built-ins self-register on
/// first access (api/adapters.cpp); external code may add() more — e.g.
/// experimental policies in a bench — and every consumer of names(),
/// for_each() and make() picks them up with zero further wiring.
class SchedulerRegistry {
 public:
  /// The process-wide registry (thread-safe initialization; built-ins are
  /// registered before the first accessor returns).
  [[nodiscard]] static SchedulerRegistry& global();

  /// Registers `scheduler` under scheduler->name(). Throws caft::CheckError
  /// on a duplicate name.
  void add(std::shared_ptr<const Scheduler> scheduler);

  /// Scheduler registered under `name`; throws caft::CheckError
  /// "unknown algo 'x'; known: ..." otherwise.
  [[nodiscard]] std::shared_ptr<const Scheduler> make(
      const std::string& name) const;

  [[nodiscard]] bool contains(const std::string& name) const;

  /// Registration-order names — the built-ins come first, in the canonical
  /// order: caft, caft-batch, ftsa, ftbar, heft.
  [[nodiscard]] std::vector<std::string> names() const;

  /// names() joined with ", " — the single source of the "known: ..." list
  /// every CLI error message shows.
  [[nodiscard]] std::string known_list() const;

  void for_each(
      const std::function<void(const Scheduler&)>& visit) const;

 private:
  SchedulerRegistry() = default;

  std::vector<std::shared_ptr<const Scheduler>> schedulers_;  ///< in order
};

namespace detail {
/// Defined in api/adapters.cpp; referenced from SchedulerRegistry::global()
/// so the adapter translation unit is always linked out of the static
/// archive (static self-registration alone would be dead-stripped).
void register_builtin_schedulers(SchedulerRegistry& registry);
}  // namespace detail

}  // namespace ftsched

/// Static self-registration for schedulers defined outside api/adapters.cpp
/// (tests, benches, downstream code): expands to a namespace-scope dummy
/// whose initializer adds one instance of `Type` to the global registry.
#define FTSCHED_REGISTER_SCHEDULER(Type)                                   \
  namespace {                                                              \
  const bool ftsched_registered_##Type =                                   \
      (::ftsched::SchedulerRegistry::global().add(                         \
           std::make_shared<Type>()),                                      \
       true);                                                              \
  }
