/// \file api/adapters.cpp
/// The five built-in schedulers of the registry, adapting the per-algorithm
/// free functions of algo/ to the ftsched::Scheduler contract. The algo/
/// headers remain the implementation layer; tools/ and examples/ consume
/// algorithms exclusively through the registry — an include guard (ctest
/// `include_what_they_ship` + a CI grep) enforces it there. bench/ also
/// schedules via the registry where it compares algorithms, but its
/// mechanism-level ablations (support modes, one-to-one toggles) may keep
/// reaching into algo/ directly.
#include <any>
#include <memory>

#include "algo/caft.hpp"
#include "algo/caft_batch.hpp"
#include "algo/ftbar.hpp"
#include "algo/ftsa.hpp"
#include "algo/heft.hpp"
#include "api/scheduler.hpp"

namespace ftsched {

namespace {

class CaftScheduler final : public Scheduler {
 public:
  [[nodiscard]] std::string name() const override { return "caft"; }
  [[nodiscard]] SchedulerCapabilities capabilities() const override {
    return {.supports_eps = true, .contention_aware = true,
            .emits_duplicates = false};
  }

 protected:
  [[nodiscard]] caft::Schedule run(const Instance& instance,
                                   const caft::SchedulerOptions& options,
                                   const ScheduleRequest& request,
                                   std::any* stats) const override {
    caft::CaftOptions caft_options;
    caft_options.base = options;
    caft_options.one_to_one = request.one_to_one;
    caft_options.support_mode = request.support_mode;
    caft::CaftRunStats run_stats;
    caft::Schedule schedule = caft_schedule(
        instance.graph(), instance.platform(), instance.costs(), caft_options,
        &run_stats);
    if (stats != nullptr) *stats = run_stats;
    return schedule;
  }
};

class CaftBatchScheduler final : public Scheduler {
 public:
  [[nodiscard]] std::string name() const override { return "caft-batch"; }
  [[nodiscard]] SchedulerCapabilities capabilities() const override {
    return {.supports_eps = true, .contention_aware = true,
            .emits_duplicates = false};
  }

 protected:
  [[nodiscard]] caft::Schedule run(const Instance& instance,
                                   const caft::SchedulerOptions& options,
                                   const ScheduleRequest& request,
                                   std::any* stats) const override {
    caft::CaftBatchOptions batch_options;
    batch_options.caft.base = options;
    batch_options.caft.one_to_one = request.one_to_one;
    batch_options.caft.support_mode = request.support_mode;
    batch_options.batch_size = request.batch_size;
    caft::CaftRunStats run_stats;
    caft::Schedule schedule = caft_batch_schedule(
        instance.graph(), instance.platform(), instance.costs(), batch_options,
        &run_stats);
    if (stats != nullptr) *stats = run_stats;
    return schedule;
  }
};

class FtsaScheduler final : public Scheduler {
 public:
  [[nodiscard]] std::string name() const override { return "ftsa"; }
  [[nodiscard]] SchedulerCapabilities capabilities() const override {
    return {.supports_eps = true, .contention_aware = false,
            .emits_duplicates = false};
  }

 protected:
  [[nodiscard]] caft::Schedule run(const Instance& instance,
                                   const caft::SchedulerOptions& options,
                                   const ScheduleRequest& /*request*/,
                                   std::any* /*stats*/) const override {
    return ftsa_schedule(instance.graph(), instance.platform(),
                         instance.costs(), options);
  }
};

class FtbarScheduler final : public Scheduler {
 public:
  [[nodiscard]] std::string name() const override { return "ftbar"; }
  [[nodiscard]] SchedulerCapabilities capabilities() const override {
    return {.supports_eps = true, .contention_aware = false,
            .emits_duplicates = true};
  }

 protected:
  [[nodiscard]] caft::Schedule run(const Instance& instance,
                                   const caft::SchedulerOptions& options,
                                   const ScheduleRequest& request,
                                   std::any* /*stats*/) const override {
    caft::FtbarOptions ftbar_options;
    ftbar_options.base = options;
    ftbar_options.minimize_start_time = request.minimize_start_time;
    return ftbar_schedule(instance.graph(), instance.platform(),
                          instance.costs(), ftbar_options);
  }
};

class HeftScheduler final : public Scheduler {
 public:
  [[nodiscard]] std::string name() const override { return "heft"; }
  [[nodiscard]] SchedulerCapabilities capabilities() const override {
    return {.supports_eps = false, .contention_aware = false,
            .emits_duplicates = false};
  }

 protected:
  /// HEFT is the fault-free baseline: ε is pinned to 0 whatever the
  /// instance or request says (capabilities().supports_eps is false).
  [[nodiscard]] std::size_t resolve_eps(
      const Instance& /*instance*/,
      const ScheduleRequest& /*request*/) const override {
    return 0;
  }

  [[nodiscard]] caft::Schedule run(const Instance& instance,
                                   const caft::SchedulerOptions& options,
                                   const ScheduleRequest& /*request*/,
                                   std::any* /*stats*/) const override {
    return heft_schedule(instance.graph(), instance.platform(),
                         instance.costs(), options.model);
  }
};

}  // namespace

namespace detail {

void register_builtin_schedulers(SchedulerRegistry& registry) {
  // Canonical order — names() and every "known: ..." message follow it.
  registry.add(std::make_shared<CaftScheduler>());
  registry.add(std::make_shared<CaftBatchScheduler>());
  registry.add(std::make_shared<FtsaScheduler>());
  registry.add(std::make_shared<FtbarScheduler>());
  registry.add(std::make_shared<HeftScheduler>());
}

}  // namespace detail

}  // namespace ftsched
