#include "api/scheduler.hpp"

#include <cctype>
#include <utility>

#include "common/check.hpp"
#include "obs/obs.hpp"

namespace ftsched {

std::string display_name(const std::string& algorithm) {
  std::string label = algorithm;
  for (char& c : label)
    c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return label;
}

std::size_t Scheduler::resolve_eps(const Instance& instance,
                                   const ScheduleRequest& request) const {
  return request.eps.value_or(instance.eps());
}

ScheduleResult Scheduler::schedule(const Instance& instance,
                                   const ScheduleRequest& request) const {
  const std::size_t eps = resolve_eps(instance, request);
  instance.validate(eps);
  const caft::SchedulerOptions options{
      eps, request.model.value_or(instance.options().model)};

  // Spans only — phase-level timings live inside the algorithms
  // ("<algo>.priorities" / "<algo>.placement"); this wrapper just brackets
  // the whole run and the optional validation pass on the trace.
  obs::Registry& registry = obs::Registry::global();
  obs::Span run_span = registry.span("scheduler.run", name());
  std::any stats;
  ScheduleResult result(run(instance, options, request, &stats));
  run_span.finish();
  result.algorithm = name();
  result.eps = eps;
  result.makespan = result.schedule.zero_crash_latency();
  result.upper_bound = result.schedule.upper_bound_latency();
  result.messages = result.schedule.message_count();
  result.message_volume = result.schedule.message_volume();
  result.stats = std::move(stats);
  if (request.validate) {
    obs::Span validate_span = registry.span("scheduler.validate", name());
    result.validated = true;
    result.validation = validate_schedule(result.schedule, instance.costs());
  }
  return result;
}

SchedulerRegistry& SchedulerRegistry::global() {
  // Built-ins are registered inside the magic-static initializer (directly
  // on the local object, not through global(), so there is no reentrancy),
  // which both guarantees they precede any external registration and forces
  // the adapters translation unit to be linked.
  static SchedulerRegistry& registry = *[] {
    auto* r = new SchedulerRegistry();
    detail::register_builtin_schedulers(*r);
    return r;
  }();
  return registry;
}

void SchedulerRegistry::add(std::shared_ptr<const Scheduler> scheduler) {
  CAFT_CHECK_MSG(scheduler != nullptr, "cannot register a null scheduler");
  const std::string name = scheduler->name();
  CAFT_CHECK_MSG(!name.empty(), "scheduler name must be non-empty");
  CAFT_CHECK_MSG(!contains(name),
                 "scheduler '" + name + "' is already registered");
  schedulers_.push_back(std::move(scheduler));
}

std::shared_ptr<const Scheduler> SchedulerRegistry::make(
    const std::string& name) const {
  for (const auto& scheduler : schedulers_)
    if (scheduler->name() == name) return scheduler;
  throw caft::CheckError("unknown algo '" + name + "'; known: " +
                         known_list());
}

bool SchedulerRegistry::contains(const std::string& name) const {
  for (const auto& scheduler : schedulers_)
    if (scheduler->name() == name) return true;
  return false;
}

std::vector<std::string> SchedulerRegistry::names() const {
  std::vector<std::string> result;
  result.reserve(schedulers_.size());
  for (const auto& scheduler : schedulers_) result.push_back(scheduler->name());
  return result;
}

std::string SchedulerRegistry::known_list() const {
  std::string joined;
  for (const auto& scheduler : schedulers_) {
    if (!joined.empty()) joined += ", ";
    joined += scheduler->name();
  }
  return joined;
}

void SchedulerRegistry::for_each(
    const std::function<void(const Scheduler&)>& visit) const {
  for (const auto& scheduler : schedulers_) visit(*scheduler);
}

}  // namespace ftsched
