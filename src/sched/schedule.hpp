/// \file schedule.hpp
/// The fault-tolerant schedule a scheduler emits: for every task its ε+1
/// *primary* replica placements B(t) = {t^(1), ..., t^(ε+1)} with start and
/// finish times, plus every committed communication between replica pairs.
///
/// Beyond the primaries, a task may carry extra *duplicates*: FTBAR's
/// Minimize-Start-Time procedure (Ahmad & Kwok [1]) copies a predecessor onto
/// the processor of its consumer to shorten the start time. Duplicates are
/// addressed by replica indices >= ε+1 and participate in data availability
/// and latency exactly like primaries, but the space-exclusion guarantee
/// (Proposition 5.2) is carried by the primaries alone.
///
/// The crash simulator, the validator, the bounds and all metrics read this
/// structure; schedulers only append to it.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "comm/engine.hpp"
#include "common/ids.hpp"
#include "dag/task_graph.hpp"
#include "platform/platform.hpp"

namespace caft {

/// Which platform model produced (and must re-execute) a schedule.
enum class CommModelKind {
  kMacroDataflow,  ///< contention-free (Section 2's traditional model)
  kOnePort,        ///< bi-directional one-port (this paper's model)
};

/// Placement of one replica t^(r).
struct ReplicaAssignment {
  ProcId proc;
  double start = 0.0;
  double finish = 0.0;
};

/// One committed communication from a replica of edge.src to a replica of
/// edge.dst (or an intra-processor hand-off when src_proc == dst_proc).
struct CommAssignment {
  EdgeIndex edge = 0;
  ReplicaRef from;
  ReplicaRef to;
  ProcId src_proc;
  ProcId dst_proc;
  double volume = 0.0;
  CommTimes times;

  /// True iff both endpoints run on the same processor (free hand-off).
  [[nodiscard]] bool intra() const { return src_proc == dst_proc; }
};

/// Complete fault-tolerant mapping of a task graph on a platform.
class Schedule {
 public:
  /// `eps` is the number of supported failures ε; every task must receive
  /// exactly ε+1 primary replicas before the schedule is used.
  Schedule(const TaskGraph& graph, const Platform& platform, std::size_t eps,
           CommModelKind model);

  [[nodiscard]] const TaskGraph& graph() const { return *graph_; }
  [[nodiscard]] const Platform& platform() const { return *platform_; }
  [[nodiscard]] std::size_t eps() const { return eps_; }
  /// ε + 1: primary replicas required per task.
  [[nodiscard]] std::size_t primary_count() const { return eps_ + 1; }
  [[nodiscard]] CommModelKind model() const { return model_; }

  /// Records primary replica `r` (< ε+1) of task `t`; each slot set once.
  void set_replica(TaskId t, ReplicaIndex r, ReplicaAssignment assignment);

  /// Appends a duplicate of task `t`; returns its replica index (>= ε+1).
  ReplicaIndex add_duplicate(TaskId t, ReplicaAssignment assignment);

  /// Overwrites the placement of duplicate `r` of `t` (duplicate slots are
  /// reserved before their communications are posted, then patched).
  void patch_duplicate(TaskId t, ReplicaIndex r, ReplicaAssignment assignment);

  /// True once set_replica was called for primary (t, r).
  [[nodiscard]] bool has_replica(TaskId t, ReplicaIndex r) const;
  /// Number of primary replicas recorded for `t` so far.
  [[nodiscard]] std::size_t primaries_recorded(TaskId t) const;
  /// Total replicas of `t` (recorded primaries + duplicates).
  [[nodiscard]] std::size_t total_replicas(TaskId t) const;

  /// Placement of replica (t, r); r may address a duplicate.
  [[nodiscard]] const ReplicaAssignment& replica(TaskId t, ReplicaIndex r) const;
  /// The ε+1 primary replicas (requires all recorded).
  [[nodiscard]] std::span<const ReplicaAssignment> primaries(TaskId t) const;
  /// Duplicates of `t` (possibly empty).
  [[nodiscard]] std::span<const ReplicaAssignment> duplicates(TaskId t) const;

  /// Records a committed communication.
  void add_comm(CommAssignment comm);

  [[nodiscard]] const std::vector<CommAssignment>& comms() const { return comms_; }

  /// Indices into comms() of the communications received by replica (t, r).
  [[nodiscard]] std::span<const std::size_t> incoming_comms(TaskId t,
                                                            ReplicaIndex r) const;

  /// True once every task has all ε+1 primaries.
  [[nodiscard]] bool complete() const;

  /// Zero-crash latency (the paper's lower bound): the latest time at which
  /// at least one replica of each task has completed, i.e.
  /// max_t min_r finish(t^(r)). Requires complete().
  [[nodiscard]] double zero_crash_latency() const;

  /// Upper bound (Section 4.2 / [4]): same expression with the *last*
  /// replica, max_t max_r finish(t^(r)).
  [[nodiscard]] double upper_bound_latency() const;

  /// Time by which every committed operation (replica executions *and*
  /// message arrivals) has finished — the natural range for crash-at-θ
  /// windows and the upper bound of the replay engine's prefix timeline.
  /// Requires complete().
  [[nodiscard]] double horizon() const;

  /// Number of inter-processor messages (intra-processor hand-offs excluded),
  /// the quantity Proposition 5.1 bounds.
  [[nodiscard]] std::size_t message_count() const;

  /// Total inter-processor data volume.
  [[nodiscard]] double message_volume() const;

 private:
  const TaskGraph* graph_;
  const Platform* platform_;
  std::size_t eps_;
  CommModelKind model_;
  /// Per task: slots 0..ε hold primaries, further slots hold duplicates.
  std::vector<std::vector<ReplicaAssignment>> replicas_;
  std::vector<std::vector<bool>> primary_set_;
  std::vector<CommAssignment> comms_;
  /// incoming_[task][replica] = indices into comms_.
  std::vector<std::vector<std::vector<std::size_t>>> incoming_;
};

}  // namespace caft
