/// \file validator.hpp
/// Structural and model-conformance validation of a Schedule. Every schedule
/// an algorithm in this library emits must pass; the property tests assert it
/// across random graphs, platforms and ε values.
///
/// Checks performed:
///   1. completeness — every task has exactly ε+1 replicas;
///   2. space exclusion — replicas of one task occupy distinct processors
///      (Proposition 5.2's prerequisite);
///   3. duration — finish − start equals E(t, P) for every replica;
///   4. processor exclusivity — replicas sharing a processor never overlap;
///   5. data availability — every replica has, for each predecessor edge,
///      at least one recorded communication whose arrival precedes its start
///      (intra-processor hand-offs count with arrival = source finish);
///   6. communication sanity — endpoints match placements, volumes match the
///      edge, the message leaves no earlier than its source replica finishes;
///   7. one-port conformance (one-port schedules only) — per-processor
///      emissions serialized (ineq. (2)), receptions serialized (ineq. (3)),
///      per-link exclusivity (ineq. (1)).
///
/// ε-failure *resistance* is a semantic property checked separately by
/// sim/resilience.hpp (it needs re-execution, not just interval checks).
#pragma once

#include <string>
#include <vector>

#include "platform/cost_model.hpp"
#include "sched/schedule.hpp"

namespace caft {

/// Outcome of validation: empty issue list means the schedule is valid.
struct ValidationResult {
  std::vector<std::string> issues;

  [[nodiscard]] bool ok() const { return issues.empty(); }
  /// All issues joined with newlines (empty string when ok()).
  [[nodiscard]] std::string summary() const;
};

/// Validates `schedule` against `costs`. `tolerance` absorbs floating-point
/// noise in time comparisons.
[[nodiscard]] ValidationResult validate_schedule(const Schedule& schedule,
                                                 const CostModel& costs,
                                                 double tolerance = 1e-6);

}  // namespace caft
