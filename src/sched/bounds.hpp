/// \file bounds.hpp
/// Derived per-schedule quantities beyond the latency bounds that live on
/// Schedule itself: processor utilization, communication breakdowns, and the
/// replication profile used in EXPERIMENTS.md's message-count analyses.
#pragma once

#include <cstddef>
#include <vector>

#include "sched/schedule.hpp"

namespace caft {

/// Aggregate accounting of one schedule.
struct ScheduleStats {
  double zero_crash_latency = 0.0;
  double upper_bound_latency = 0.0;
  std::size_t inter_proc_messages = 0;  ///< Proposition 5.1's count
  std::size_t intra_proc_handoffs = 0;
  double inter_proc_volume = 0.0;
  /// Average inter-processor messages per DAG edge; the paper contrasts
  /// CAFT's ~(ε+1) with FTSA/FTBAR's ~(ε+1)².
  double messages_per_edge = 0.0;
  /// Busy time per processor (sum of replica durations).
  std::vector<double> busy_time;
  /// Busy / makespan, averaged over processors that run at least one replica.
  double mean_utilization = 0.0;
  /// Number of processors that received at least one replica.
  std::size_t procs_used = 0;
};

/// Computes the aggregate stats of a complete schedule.
[[nodiscard]] ScheduleStats schedule_stats(const Schedule& schedule);

}  // namespace caft
