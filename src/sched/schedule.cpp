#include "sched/schedule.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.hpp"

namespace caft {

Schedule::Schedule(const TaskGraph& graph, const Platform& platform,
                   std::size_t eps, CommModelKind model)
    : graph_(&graph), platform_(&platform), eps_(eps), model_(model) {
  CAFT_CHECK_MSG(eps + 1 <= platform.proc_count(),
                 "need at least eps+1 processors for space exclusion");
  replicas_.assign(graph.task_count(),
                   std::vector<ReplicaAssignment>(primary_count()));
  primary_set_.assign(graph.task_count(),
                      std::vector<bool>(primary_count(), false));
  incoming_.assign(graph.task_count(),
                   std::vector<std::vector<std::size_t>>(primary_count()));
}

void Schedule::set_replica(TaskId t, ReplicaIndex r,
                           ReplicaAssignment assignment) {
  CAFT_CHECK(t.index() < graph_->task_count());
  CAFT_CHECK_MSG(r < primary_count(), "primary replica index out of range");
  CAFT_CHECK_MSG(!primary_set_[t.index()][r], "replica already placed");
  CAFT_CHECK(assignment.proc.index() < platform_->proc_count());
  CAFT_CHECK(assignment.start >= 0.0 && assignment.finish >= assignment.start);
  replicas_[t.index()][r] = assignment;
  primary_set_[t.index()][r] = true;
}

ReplicaIndex Schedule::add_duplicate(TaskId t, ReplicaAssignment assignment) {
  CAFT_CHECK(t.index() < graph_->task_count());
  CAFT_CHECK(assignment.proc.index() < platform_->proc_count());
  CAFT_CHECK(assignment.start >= 0.0 && assignment.finish >= assignment.start);
  const auto r = static_cast<ReplicaIndex>(replicas_[t.index()].size());
  replicas_[t.index()].push_back(assignment);
  incoming_[t.index()].emplace_back();
  return r;
}

void Schedule::patch_duplicate(TaskId t, ReplicaIndex r,
                               ReplicaAssignment assignment) {
  CAFT_CHECK(t.index() < graph_->task_count());
  CAFT_CHECK_MSG(r >= primary_count() && r < replicas_[t.index()].size(),
                 "patch_duplicate only addresses duplicate slots");
  CAFT_CHECK(assignment.proc.index() < platform_->proc_count());
  CAFT_CHECK(assignment.start >= 0.0 && assignment.finish >= assignment.start);
  replicas_[t.index()][r] = assignment;
}

bool Schedule::has_replica(TaskId t, ReplicaIndex r) const {
  CAFT_CHECK(t.index() < graph_->task_count());
  CAFT_CHECK(r < primary_count());
  return primary_set_[t.index()][r];
}

std::size_t Schedule::primaries_recorded(TaskId t) const {
  CAFT_CHECK(t.index() < graph_->task_count());
  const auto& flags = primary_set_[t.index()];
  return static_cast<std::size_t>(std::count(flags.begin(), flags.end(), true));
}

std::size_t Schedule::total_replicas(TaskId t) const {
  CAFT_CHECK(t.index() < graph_->task_count());
  const std::size_t extras = replicas_[t.index()].size() - primary_count();
  return primaries_recorded(t) + extras;
}

const ReplicaAssignment& Schedule::replica(TaskId t, ReplicaIndex r) const {
  CAFT_CHECK(t.index() < graph_->task_count());
  CAFT_CHECK_MSG(r < replicas_[t.index()].size(), "replica index out of range");
  if (r < primary_count())
    CAFT_CHECK_MSG(primary_set_[t.index()][r], "replica not placed yet");
  return replicas_[t.index()][r];
}

std::span<const ReplicaAssignment> Schedule::primaries(TaskId t) const {
  CAFT_CHECK_MSG(primaries_recorded(t) == primary_count(),
                 "task does not have all primary replicas yet");
  return {replicas_[t.index()].data(), primary_count()};
}

std::span<const ReplicaAssignment> Schedule::duplicates(TaskId t) const {
  CAFT_CHECK(t.index() < graph_->task_count());
  const auto& all = replicas_[t.index()];
  return {all.data() + primary_count(), all.size() - primary_count()};
}

void Schedule::add_comm(CommAssignment comm) {
  CAFT_CHECK(comm.edge < graph_->edge_count());
  const Edge& e = graph_->edge(comm.edge);
  CAFT_CHECK_MSG(comm.from.task == e.src && comm.to.task == e.dst,
                 "communication endpoints must match the edge");
  CAFT_CHECK(comm.from.replica < replicas_[comm.from.task.index()].size());
  CAFT_CHECK(comm.to.replica < replicas_[comm.to.task.index()].size());
  incoming_[comm.to.task.index()][comm.to.replica].push_back(comms_.size());
  comms_.push_back(std::move(comm));
}

std::span<const std::size_t> Schedule::incoming_comms(TaskId t,
                                                      ReplicaIndex r) const {
  CAFT_CHECK(t.index() < graph_->task_count());
  CAFT_CHECK(r < incoming_[t.index()].size());
  return incoming_[t.index()][r];
}

bool Schedule::complete() const {
  for (const auto& flags : primary_set_)
    if (!std::all_of(flags.begin(), flags.end(), [](bool b) { return b; }))
      return false;
  return true;
}

double Schedule::zero_crash_latency() const {
  CAFT_CHECK_MSG(complete(), "schedule is incomplete");
  double latency = 0.0;
  for (const TaskId t : graph_->all_tasks()) {
    double first = std::numeric_limits<double>::infinity();
    for (const ReplicaAssignment& a : replicas_[t.index()])
      first = std::min(first, a.finish);
    latency = std::max(latency, first);
  }
  return latency;
}

double Schedule::upper_bound_latency() const {
  CAFT_CHECK_MSG(complete(), "schedule is incomplete");
  double latency = 0.0;
  for (const TaskId t : graph_->all_tasks())
    for (const ReplicaAssignment& a : replicas_[t.index()])
      latency = std::max(latency, a.finish);
  return latency;
}

double Schedule::horizon() const {
  CAFT_CHECK_MSG(complete(), "schedule is incomplete");
  // Fold only finite instants: a schedule can legitimately carry +inf (or
  // NaN) sentinels on replicas and comms that were reserved but never
  // timed — e.g. duplicate slots patched out, or copies addressed to a
  // partially-dead remainder of the platform. Folding those in would
  // poison the horizon and with it every crash-window range and snapshot
  // bound derived from it.
  double horizon = 0.0;
  for (const auto& task_replicas : replicas_)
    for (const ReplicaAssignment& a : task_replicas)
      if (std::isfinite(a.finish)) horizon = std::max(horizon, a.finish);
  for (const CommAssignment& c : comms_)
    if (std::isfinite(c.times.arrival))
      horizon = std::max(horizon, c.times.arrival);
  return horizon;
}

std::size_t Schedule::message_count() const {
  return static_cast<std::size_t>(
      std::count_if(comms_.begin(), comms_.end(),
                    [](const CommAssignment& c) { return !c.intra(); }));
}

double Schedule::message_volume() const {
  double volume = 0.0;
  for (const CommAssignment& c : comms_)
    if (!c.intra()) volume += c.volume;
  return volume;
}

}  // namespace caft
