#include "sched/bounds.hpp"

#include "common/check.hpp"

namespace caft {

ScheduleStats schedule_stats(const Schedule& schedule) {
  CAFT_CHECK_MSG(schedule.complete(), "schedule is incomplete");
  ScheduleStats stats;
  stats.zero_crash_latency = schedule.zero_crash_latency();
  stats.upper_bound_latency = schedule.upper_bound_latency();

  for (const CommAssignment& c : schedule.comms()) {
    if (c.intra()) {
      ++stats.intra_proc_handoffs;
    } else {
      ++stats.inter_proc_messages;
      stats.inter_proc_volume += c.volume;
    }
  }
  const std::size_t edges = schedule.graph().edge_count();
  stats.messages_per_edge =
      edges == 0 ? 0.0
                 : static_cast<double>(stats.inter_proc_messages) /
                       static_cast<double>(edges);

  stats.busy_time.assign(schedule.platform().proc_count(), 0.0);
  for (const TaskId t : schedule.graph().all_tasks()) {
    for (const ReplicaAssignment& a : schedule.primaries(t))
      stats.busy_time[a.proc.index()] += a.finish - a.start;
    for (const ReplicaAssignment& a : schedule.duplicates(t))
      stats.busy_time[a.proc.index()] += a.finish - a.start;
  }

  const double makespan = stats.upper_bound_latency;
  double utilization_sum = 0.0;
  for (const double busy : stats.busy_time) {
    if (busy <= 0.0) continue;
    ++stats.procs_used;
    if (makespan > 0.0) utilization_sum += busy / makespan;
  }
  stats.mean_utilization =
      stats.procs_used == 0
          ? 0.0
          : utilization_sum / static_cast<double>(stats.procs_used);
  return stats;
}

}  // namespace caft
