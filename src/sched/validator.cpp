#include "sched/validator.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

namespace caft {

std::string ValidationResult::summary() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < issues.size(); ++i) {
    if (i != 0) os << '\n';
    os << issues[i];
  }
  return os.str();
}

namespace {

/// Collects issues with printf-free formatting helpers.
class IssueSink {
 public:
  explicit IssueSink(std::vector<std::string>& issues) : issues_(&issues) {}

  template <typename... Parts>
  void add(const Parts&... parts) {
    std::ostringstream os;
    (os << ... << parts);
    issues_->push_back(os.str());
  }

 private:
  std::vector<std::string>* issues_;
};

struct Interval {
  double start;
  double finish;
  std::string what;
};

/// Reports every overlapping pair in `intervals` (after sorting by start).
void check_disjoint(std::vector<Interval>& intervals, const std::string& where,
                    double tolerance, IssueSink& sink) {
  std::sort(intervals.begin(), intervals.end(),
            [](const Interval& a, const Interval& b) {
              return a.start < b.start;
            });
  for (std::size_t i = 1; i < intervals.size(); ++i) {
    const Interval& prev = intervals[i - 1];
    const Interval& cur = intervals[i];
    if (cur.start < prev.finish - tolerance)
      sink.add(where, ": ", prev.what, " [", prev.start, ", ", prev.finish,
               ") overlaps ", cur.what, " [", cur.start, ", ", cur.finish, ")");
  }
}

}  // namespace

ValidationResult validate_schedule(const Schedule& schedule,
                                   const CostModel& costs, double tolerance) {
  ValidationResult result;
  IssueSink sink(result.issues);
  const TaskGraph& g = schedule.graph();

  if (!schedule.complete()) {
    sink.add("schedule incomplete: not every task has ",
             schedule.primary_count(), " primary replicas");
    return result;  // everything below needs completeness
  }

  // 2) space exclusion (primaries only) + 3) durations (all replicas).
  for (const TaskId t : g.all_tasks()) {
    const std::size_t total = schedule.total_replicas(t);
    for (ReplicaIndex r = 0; r < total; ++r) {
      const ReplicaAssignment& a = schedule.replica(t, r);
      const double expected = costs.exec(t, a.proc);
      if (std::abs((a.finish - a.start) - expected) > tolerance)
        sink.add("task ", g.name(t), " replica ", r, ": duration ",
                 a.finish - a.start, " != E(t,P) = ", expected);
    }
    const auto prims = schedule.primaries(t);
    for (ReplicaIndex r = 0; r < prims.size(); ++r)
      for (ReplicaIndex r2 = static_cast<ReplicaIndex>(r + 1);
           r2 < prims.size(); ++r2)
        if (prims[r2].proc == prims[r].proc)
          sink.add("task ", g.name(t), ": primary replicas ", r, " and ", r2,
                   " share processor P", prims[r].proc.value());
  }

  // 4) processor exclusivity (all replicas, duplicates included).
  {
    std::vector<std::vector<Interval>> per_proc(schedule.platform().proc_count());
    for (const TaskId t : g.all_tasks()) {
      const std::size_t total = schedule.total_replicas(t);
      for (ReplicaIndex r = 0; r < total; ++r) {
        const ReplicaAssignment& a = schedule.replica(t, r);
        per_proc[a.proc.index()].push_back(
            {a.start, a.finish, g.name(t) + "#" + std::to_string(r)});
      }
    }
    for (std::size_t p = 0; p < per_proc.size(); ++p)
      check_disjoint(per_proc[p], "processor P" + std::to_string(p), tolerance,
                     sink);
  }

  // 5) data availability per (replica, in-edge).
  for (const TaskId t : g.all_tasks()) {
    const std::size_t total = schedule.total_replicas(t);
    for (ReplicaIndex r = 0; r < total; ++r) {
      const double start = schedule.replica(t, r).start;
      for (const EdgeIndex e : g.in_edges(t)) {
        bool fed = false;
        for (const std::size_t ci : schedule.incoming_comms(t, r)) {
          const CommAssignment& c = schedule.comms()[ci];
          if (c.edge == e && c.times.arrival <= start + tolerance) {
            fed = true;
            break;
          }
        }
        if (!fed)
          sink.add("task ", g.name(t), " replica ", r, ": no input for edge ",
                   g.name(g.edge(e).src), " -> ", g.name(t),
                   " arrives before start ", start);
      }
    }
  }

  // 6) communication sanity.
  for (const CommAssignment& c : schedule.comms()) {
    const Edge& e = g.edge(c.edge);
    const ReplicaAssignment& src =
        schedule.replica(c.from.task, c.from.replica);
    const ReplicaAssignment& dst = schedule.replica(c.to.task, c.to.replica);
    if (src.proc != c.src_proc)
      sink.add("comm on edge ", g.name(e.src), "->", g.name(e.dst),
               ": src_proc mismatch");
    if (dst.proc != c.dst_proc)
      sink.add("comm on edge ", g.name(e.src), "->", g.name(e.dst),
               ": dst_proc mismatch");
    if (std::abs(c.volume - e.volume) > tolerance)
      sink.add("comm on edge ", g.name(e.src), "->", g.name(e.dst),
               ": volume ", c.volume, " != edge volume ", e.volume);
    if (c.times.link_start < src.finish - tolerance)
      sink.add("comm on edge ", g.name(e.src), "->", g.name(e.dst),
               ": leaves at ", c.times.link_start,
               " before its source replica finishes at ", src.finish);
    if (c.times.arrival < c.times.link_start - tolerance)
      sink.add("comm on edge ", g.name(e.src), "->", g.name(e.dst),
               ": arrival precedes link start");
    if (!c.intra()) {
      const double expected =
          c.volume * costs.pair_delay(c.src_proc, c.dst_proc);
      const double on_wire = c.times.link_finish - c.times.link_start;
      if (on_wire + tolerance < expected)
        sink.add("comm on edge ", g.name(e.src), "->", g.name(e.dst),
                 ": wire time ", on_wire, " shorter than V*d = ", expected);
    }
  }

  // 7) one-port conformance.
  if (schedule.model() == CommModelKind::kOnePort) {
    const std::size_t m = schedule.platform().proc_count();
    std::vector<std::vector<Interval>> send(m), recv(m);
    std::map<LinkId, std::vector<Interval>> per_link;
    for (std::size_t ci = 0; ci < schedule.comms().size(); ++ci) {
      const CommAssignment& c = schedule.comms()[ci];
      if (c.intra()) continue;
      const std::string what = "comm#" + std::to_string(ci);
      send[c.src_proc.index()].push_back(
          {c.times.link_start, c.times.send_finish, what});
      recv[c.dst_proc.index()].push_back(
          {c.times.recv_start, c.times.arrival, what});
      for (const LinkOccupancy& seg : c.times.segments)
        per_link[seg.link].push_back({seg.start, seg.finish, what});
    }
    for (std::size_t p = 0; p < m; ++p) {
      check_disjoint(send[p], "send port of P" + std::to_string(p), tolerance,
                     sink);
      check_disjoint(recv[p], "receive port of P" + std::to_string(p), tolerance,
                     sink);
    }
    for (auto& [link, intervals] : per_link)
      check_disjoint(intervals, "link " + std::to_string(link.value()),
                     tolerance, sink);
  }

  return result;
}

}  // namespace caft
