/// \file runner.hpp
/// Executes one ExperimentConfig: for every granularity point it generates
/// `graphs_per_point` random (graph, costs) instances, runs the fault-free
/// baselines plus every algorithm in config.algorithms (resolved through the
/// SchedulerRegistry) under the one-port model, re-executes each
/// fault-tolerant schedule under a uniformly drawn crash set, and averages
/// the paper's metrics.
///
/// Results are keyed by registry algorithm name, not by per-algorithm
/// scalar fields: adding a sixth algorithm to a figure is one string in
/// ExperimentConfig::algorithms — neither this struct nor exp/report needs
/// touching.
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "exp/config.hpp"

namespace caft {

/// Averages of one algorithm at one granularity point.
struct AlgoAverages {
  /// Panel (a): normalized 0-crash latency and upper bound.
  double latency0 = 0.0;
  double latency_ub = 0.0;
  /// Panel (b): normalized re-executed latency under `crashes` failures.
  double latency_crash = 0.0;
  /// Panel (c): overhead % versus the fault-free CAFT latency.
  double overhead0 = 0.0;
  double overhead_crash = 0.0;
  /// Message accounting (Section 6's communication analysis).
  double messages = 0.0;
  double messages_per_edge = 0.0;
};

/// Averages for one granularity point — one x position of the figures.
struct PointAverages {
  double granularity = 0.0;

  /// Fault-free baselines: HEFT (the paper's CAFT*) and FTBAR at ε=0.
  double ff_caft = 0.0;
  double ff_ftbar = 0.0;

  /// Per-algorithm averages, keyed by registry name, in
  /// ExperimentConfig::algorithms order.
  std::vector<std::pair<std::string, AlgoAverages>> algos;

  /// Averages of `name`; null when the config did not run it.
  [[nodiscard]] const AlgoAverages* algo(const std::string& name) const;

  /// Crash re-executions in which some task delivered no result (should be
  /// 0: every algorithm in the default set tolerates up to ε failures and
  /// crashes ≤ ε).
  std::size_t crash_failures = 0;
};

/// Runs the experiment; one PointAverages per granularity, in sweep order.
/// Repetitions run in parallel across hardware threads (override with the
/// CAFT_THREADS environment variable); results are bit-for-bit independent
/// of the thread count because every repetition owns a pre-split random
/// stream and the fold happens in repetition order.
[[nodiscard]] std::vector<PointAverages> run_experiment(
    const ExperimentConfig& config);

/// Worker threads run_experiment will use (CAFT_THREADS env var, else the
/// hardware concurrency, else 1).
[[nodiscard]] std::size_t experiment_thread_count();

}  // namespace caft
