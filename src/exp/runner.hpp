/// \file runner.hpp
/// Executes one ExperimentConfig: for every granularity point it generates
/// `graphs_per_point` random (graph, costs) instances, runs the fault-free
/// baselines plus FTSA, FTBAR and CAFT under the one-port model, re-executes
/// each fault-tolerant schedule under a uniformly drawn crash set, and
/// averages the paper's metrics.
#pragma once

#include <cstddef>
#include <vector>

#include "exp/config.hpp"

namespace caft {

/// Averages for one granularity point — one x position of the figures.
struct PointAverages {
  double granularity = 0.0;

  // Panel (a): normalized latencies, fault-free + 0-crash + upper bounds.
  double ff_caft = 0.0;   ///< fault-free CAFT ≡ HEFT (the paper's CAFT*)
  double ff_ftbar = 0.0;  ///< fault-free FTBAR
  double ftsa0 = 0.0, ftsa_ub = 0.0;
  double ftbar0 = 0.0, ftbar_ub = 0.0;
  double caft0 = 0.0, caft_ub = 0.0;

  // Panel (b): re-executed latency under `crashes` failures.
  double ftsa_c = 0.0, ftbar_c = 0.0, caft_c = 0.0;

  // Panel (c): overhead % versus the fault-free CAFT latency.
  double ovh_ftsa0 = 0.0, ovh_ftsa_c = 0.0;
  double ovh_ftbar0 = 0.0, ovh_ftbar_c = 0.0;
  double ovh_caft0 = 0.0, ovh_caft_c = 0.0;

  // Message accounting (Section 6's communication analysis).
  double msgs_ftsa = 0.0, msgs_ftbar = 0.0, msgs_caft = 0.0;
  double msgs_per_edge_ftsa = 0.0, msgs_per_edge_ftbar = 0.0,
         msgs_per_edge_caft = 0.0;

  /// Crash re-executions in which some task delivered no result (should be
  /// 0: all three algorithms tolerate up to ε failures and crashes ≤ ε).
  std::size_t crash_failures = 0;
};

/// Runs the experiment; one PointAverages per granularity, in sweep order.
/// Repetitions run in parallel across hardware threads (override with the
/// CAFT_THREADS environment variable); results are bit-for-bit independent
/// of the thread count because every repetition owns a pre-split random
/// stream and the fold happens in repetition order.
[[nodiscard]] std::vector<PointAverages> run_experiment(
    const ExperimentConfig& config);

/// Worker threads run_experiment will use (CAFT_THREADS env var, else the
/// hardware concurrency, else 1).
[[nodiscard]] std::size_t experiment_thread_count();

}  // namespace caft
