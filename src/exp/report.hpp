/// \file report.hpp
/// Turns run_experiment output into the paper's three panels per figure —
/// (a) normalized latency with bounds and fault-free baselines, (b) 0-crash
/// versus c-crash latency, (c) average overhead % — as printable tables and
/// CSV files.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "exp/config.hpp"
#include "exp/runner.hpp"

namespace caft {

/// Panel (a): granularity, FTSA0, FTSA-UB, FTBAR0, FTBAR-UB, CAFT0,
/// CAFT-UB, FaultFree-CAFT, FaultFree-FTBAR.
[[nodiscard]] Table panel_a(const ExperimentConfig& config,
                            const std::vector<PointAverages>& points);

/// Panel (b): granularity, {FTSA, FTBAR, CAFT} x {0 crash, c crash}.
[[nodiscard]] Table panel_b(const ExperimentConfig& config,
                            const std::vector<PointAverages>& points);

/// Panel (c): granularity, overhead % for the six series of panel (b).
[[nodiscard]] Table panel_c(const ExperimentConfig& config,
                            const std::vector<PointAverages>& points);

/// Bonus panel: average inter-processor messages (and per edge) per
/// algorithm — the communication analysis of Section 6.
[[nodiscard]] Table panel_messages(const ExperimentConfig& config,
                                   const std::vector<PointAverages>& points);

/// Prints all panels and, when `csv_prefix` is non-empty, writes
/// `<csv_prefix>_{a,b,c,msgs}.csv`.
void report_figure(std::ostream& os, const ExperimentConfig& config,
                   const std::vector<PointAverages>& points,
                   const std::string& csv_prefix = "");

}  // namespace caft
