#include "exp/runner.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <thread>

#include "api/api.hpp"
#include "common/check.hpp"
#include "common/parallel.hpp"
#include "metrics/metrics.hpp"
#include "sim/crash_sim.hpp"

namespace caft {

namespace {

/// Accumulates one double with mean finalization.
class Mean {
 public:
  void add(double value) {
    sum_ += value;
    ++count_;
  }
  [[nodiscard]] double value() const {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }

 private:
  double sum_ = 0.0;
  std::size_t count_ = 0;
};

constexpr double kSkip = std::numeric_limits<double>::quiet_NaN();

/// One algorithm's metrics in one repetition. NaN = missing (a crash
/// re-execution that lost results — counted, not averaged).
struct AlgoRep {
  double latency0 = 0.0, latency_ub = 0.0, latency_crash = kSkip;
  double overhead0 = 0.0, overhead_crash = kSkip;
  double messages = 0.0, messages_per_edge = kSkip;
};

/// All metrics of one repetition (one random graph), algorithms indexed as
/// in config.algorithms.
struct RepMetrics {
  double ff_caft = 0.0, ff_ftbar = 0.0;
  std::vector<AlgoRep> algos;
  bool crash_failure = false;
};

/// Streaming per-algorithm means, same indexing as config.algorithms.
struct AlgoMeans {
  Mean latency0, latency_ub, latency_crash;
  Mean overhead0, overhead_crash;
  Mean messages, messages_per_edge;
};

void fold(Mean& mean, double value) {
  if (!std::isnan(value)) mean.add(value);
}

/// Every scheduler an experiment uses, resolved from the registry once up
/// front (an unknown config name fails before any work starts, and the hot
/// per-repetition loop does no registry lookups).
struct ResolvedSchedulers {
  std::shared_ptr<const ftsched::Scheduler> heft;   ///< CAFT* baseline
  std::shared_ptr<const ftsched::Scheduler> ftbar;  ///< ε=0 baseline
  std::vector<std::shared_ptr<const ftsched::Scheduler>> algos;
};

/// Runs one repetition end to end. Pure function of (config, granularity,
/// rng seed material) — schedulers are stateless — so repetitions can run
/// on any thread.
RepMetrics run_repetition(const ExperimentConfig& config,
                          const ResolvedSchedulers& schedulers,
                          double granularity, Rng rng) {
  TaskGraph graph = random_dag(config.dag, rng);
  CostSynthesisParams cost_params = config.costs;
  cost_params.granularity = granularity;
  const ftsched::Instance instance(
      std::move(graph), Platform(config.proc_count), cost_params, rng,
      ftsched::RunOptions{config.eps, CommModelKind::kOnePort});

  // Scheduling is validated by the algorithm test suites; the runner skips
  // the per-repetition validator pass (it would dominate small sweeps).
  ftsched::ScheduleRequest request;
  request.validate = false;

  // Fault-free baselines (CAFT* ≡ HEFT for the overhead formula; FTBAR at
  // ε = 0 for panel (a)).
  const ftsched::ScheduleResult ff_caft =
      schedulers.heft->schedule(instance, request);
  const double caft_star = ff_caft.makespan;
  ftsched::ScheduleRequest ff_request = request;
  ff_request.eps = 0;
  const ftsched::ScheduleResult ff_ftbar =
      schedulers.ftbar->schedule(instance, ff_request);

  // Fault-tolerant schedules, one per configured algorithm.
  std::vector<ftsched::ScheduleResult> results;
  results.reserve(schedulers.algos.size());
  for (const auto& scheduler : schedulers.algos)
    results.push_back(scheduler->schedule(instance, request));

  // Crash re-execution: one uniformly drawn crash set per repetition,
  // shared across all algorithms (paired comparison).
  const auto indices =
      rng.sample_without_replacement(config.proc_count, config.crashes);
  std::vector<ProcId> failed(indices.size());
  for (std::size_t i = 0; i < indices.size(); ++i)
    failed[i] = ProcId(static_cast<ProcId::value_type>(indices[i]));
  const CrashScenario scenario =
      CrashScenario::at_zero(config.proc_count, failed);

  const auto norm = [&](double latency) {
    return normalized_latency(latency, instance.graph(), instance.costs());
  };

  RepMetrics rep;
  rep.ff_caft = norm(caft_star);
  rep.ff_ftbar = norm(ff_ftbar.makespan);
  rep.algos.resize(results.size());
  const double edges = static_cast<double>(instance.graph().edge_count());
  for (std::size_t a = 0; a < results.size(); ++a) {
    const ftsched::ScheduleResult& result = results[a];
    const CrashResult crash =
        simulate_crashes(result.schedule, instance.costs(), scenario);
    AlgoRep& algo = rep.algos[a];
    algo.latency0 = norm(result.makespan);
    algo.latency_ub = norm(result.upper_bound);
    algo.overhead0 = overhead_percent(result.makespan, caft_star);
    algo.messages = static_cast<double>(result.messages);
    if (edges > 0) algo.messages_per_edge = algo.messages / edges;
    if (crash.success) {
      algo.latency_crash = norm(crash.latency);
      algo.overhead_crash = overhead_percent(crash.latency, caft_star);
    } else {
      rep.crash_failure = true;
    }
  }
  return rep;
}

}  // namespace

const AlgoAverages* PointAverages::algo(const std::string& name) const {
  for (const auto& [key, averages] : algos)
    if (key == name) return &averages;
  return nullptr;
}

std::size_t experiment_thread_count() { return default_thread_count(); }

std::vector<PointAverages> run_experiment(const ExperimentConfig& config) {
  CAFT_CHECK_MSG(config.crashes <= config.eps,
                 "crash count above eps would break the guarantee");
  CAFT_CHECK_MSG(!config.algorithms.empty(),
                 "experiment config names no algorithms");
  // Resolve every algorithm (baselines included) up front — an unknown name
  // fails here with the registry's "unknown algo ...; known: ..." message,
  // not mid-sweep — and the repetition loop does no registry lookups.
  const ftsched::SchedulerRegistry& registry =
      ftsched::SchedulerRegistry::global();
  ResolvedSchedulers schedulers;
  schedulers.heft = registry.make("heft");
  schedulers.ftbar = registry.make("ftbar");
  schedulers.algos.reserve(config.algorithms.size());
  for (const std::string& name : config.algorithms)
    schedulers.algos.push_back(registry.make(name));

  std::vector<PointAverages> points;
  points.reserve(config.granularities.size());
  Rng master(config.seed);
  const std::size_t threads =
      std::min(experiment_thread_count(), config.graphs_per_point);

  for (const double granularity : config.granularities) {
    // Deterministic per-repetition streams: split sequentially up front so
    // the thread schedule cannot influence the draws.
    std::vector<Rng> streams;
    streams.reserve(config.graphs_per_point);
    for (std::size_t rep = 0; rep < config.graphs_per_point; ++rep)
      streams.push_back(master.split());

    std::vector<RepMetrics> reps(config.graphs_per_point);
    const auto worker = [&](std::size_t first, std::size_t stride) {
      for (std::size_t rep = first; rep < reps.size(); rep += stride)
        reps[rep] =
            run_repetition(config, schedulers, granularity, streams[rep]);
    };
    if (threads <= 1) {
      worker(0, 1);
    } else {
      std::vector<std::thread> pool;
      pool.reserve(threads);
      for (std::size_t t = 0; t < threads; ++t)
        pool.emplace_back(worker, t, threads);
      for (std::thread& thread : pool) thread.join();
    }

    // Fold in repetition order: bit-for-bit deterministic regardless of the
    // thread interleaving above.
    Mean ff_caft, ff_ftbar;
    std::vector<AlgoMeans> means(config.algorithms.size());
    std::size_t crash_failures = 0;
    for (const RepMetrics& rep : reps) {
      if (rep.crash_failure) ++crash_failures;
      fold(ff_caft, rep.ff_caft);
      fold(ff_ftbar, rep.ff_ftbar);
      for (std::size_t a = 0; a < means.size(); ++a) {
        const AlgoRep& algo = rep.algos[a];
        fold(means[a].latency0, algo.latency0);
        fold(means[a].latency_ub, algo.latency_ub);
        fold(means[a].latency_crash, algo.latency_crash);
        fold(means[a].overhead0, algo.overhead0);
        fold(means[a].overhead_crash, algo.overhead_crash);
        fold(means[a].messages, algo.messages);
        fold(means[a].messages_per_edge, algo.messages_per_edge);
      }
    }

    PointAverages point;
    point.granularity = granularity;
    point.ff_caft = ff_caft.value();
    point.ff_ftbar = ff_ftbar.value();
    point.algos.reserve(config.algorithms.size());
    for (std::size_t a = 0; a < means.size(); ++a) {
      AlgoAverages averages;
      averages.latency0 = means[a].latency0.value();
      averages.latency_ub = means[a].latency_ub.value();
      averages.latency_crash = means[a].latency_crash.value();
      averages.overhead0 = means[a].overhead0.value();
      averages.overhead_crash = means[a].overhead_crash.value();
      averages.messages = means[a].messages.value();
      averages.messages_per_edge = means[a].messages_per_edge.value();
      point.algos.emplace_back(config.algorithms[a], averages);
    }
    point.crash_failures = crash_failures;
    points.push_back(point);
  }
  return points;
}

}  // namespace caft
