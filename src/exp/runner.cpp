#include "exp/runner.hpp"

#include <algorithm>
#include <cmath>
#include <thread>

#include "algo/caft.hpp"
#include "algo/ftbar.hpp"
#include "algo/ftsa.hpp"
#include "algo/heft.hpp"
#include "common/check.hpp"
#include "common/parallel.hpp"
#include "metrics/metrics.hpp"
#include "sched/bounds.hpp"
#include "sim/resilience.hpp"

namespace caft {

namespace {

/// Accumulates one double with mean finalization.
class Mean {
 public:
  void add(double value) {
    sum_ += value;
    ++count_;
  }
  [[nodiscard]] double value() const {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }

 private:
  double sum_ = 0.0;
  std::size_t count_ = 0;
};

constexpr double kSkip = std::numeric_limits<double>::quiet_NaN();

/// All metrics of one repetition (one random graph). NaN = missing (a crash
/// re-execution that lost results — counted, not averaged).
struct RepMetrics {
  double ff_caft = 0.0, ff_ftbar = 0.0;
  double ftsa0 = 0.0, ftsa_ub = 0.0, ftsa_c = kSkip;
  double ftbar0 = 0.0, ftbar_ub = 0.0, ftbar_c = kSkip;
  double caft0 = 0.0, caft_ub = 0.0, caft_c = kSkip;
  double ovh_ftsa0 = 0.0, ovh_ftsa_c = kSkip;
  double ovh_ftbar0 = 0.0, ovh_ftbar_c = kSkip;
  double ovh_caft0 = 0.0, ovh_caft_c = kSkip;
  double msgs_ftsa = 0.0, msgs_ftbar = 0.0, msgs_caft = 0.0;
  double mpe_ftsa = kSkip, mpe_ftbar = kSkip, mpe_caft = kSkip;
  bool crash_failure = false;
};

void fold(Mean& mean, double value) {
  if (!std::isnan(value)) mean.add(value);
}

/// Runs one repetition end to end. Pure function of (config, granularity,
/// rng seed material), so repetitions can run on any thread.
RepMetrics run_repetition(const ExperimentConfig& config, double granularity,
                          Rng rng) {
  const TaskGraph graph = random_dag(config.dag, rng);
  const Platform platform(config.proc_count);
  CostSynthesisParams cost_params = config.costs;
  cost_params.granularity = granularity;
  const CostModel costs = synthesize_costs(graph, platform, cost_params, rng);

  const SchedulerOptions ft_options{config.eps, CommModelKind::kOnePort};

  // Fault-free baselines (CAFT* for the overhead formula).
  const Schedule ff_caft_sched =
      heft_schedule(graph, platform, costs, CommModelKind::kOnePort);
  const double caft_star = ff_caft_sched.zero_crash_latency();
  FtbarOptions ff_ftbar_options;
  ff_ftbar_options.base = SchedulerOptions{0, CommModelKind::kOnePort};
  const Schedule ff_ftbar_sched =
      ftbar_schedule(graph, platform, costs, ff_ftbar_options);

  // Fault-tolerant schedules.
  const Schedule ftsa = ftsa_schedule(graph, platform, costs, ft_options);
  FtbarOptions ftbar_options;
  ftbar_options.base = ft_options;
  const Schedule ftbar = ftbar_schedule(graph, platform, costs, ftbar_options);
  CaftOptions caft_options;
  caft_options.base = ft_options;
  const Schedule caft = caft_schedule(graph, platform, costs, caft_options);

  // Crash re-execution: one uniformly drawn crash set per repetition,
  // shared across the three algorithms (paired comparison).
  const auto indices =
      rng.sample_without_replacement(config.proc_count, config.crashes);
  std::vector<ProcId> failed(indices.size());
  for (std::size_t i = 0; i < indices.size(); ++i)
    failed[i] = ProcId(static_cast<ProcId::value_type>(indices[i]));
  const CrashScenario scenario =
      CrashScenario::at_zero(config.proc_count, failed);
  const CrashResult ftsa_crash = simulate_crashes(ftsa, costs, scenario);
  const CrashResult ftbar_crash = simulate_crashes(ftbar, costs, scenario);
  const CrashResult caft_crash = simulate_crashes(caft, costs, scenario);

  const auto norm = [&](double latency) {
    return normalized_latency(latency, graph, costs);
  };

  RepMetrics rep;
  rep.crash_failure =
      !ftsa_crash.success || !ftbar_crash.success || !caft_crash.success;
  rep.ff_caft = norm(caft_star);
  rep.ff_ftbar = norm(ff_ftbar_sched.zero_crash_latency());
  rep.ftsa0 = norm(ftsa.zero_crash_latency());
  rep.ftsa_ub = norm(ftsa.upper_bound_latency());
  rep.ftbar0 = norm(ftbar.zero_crash_latency());
  rep.ftbar_ub = norm(ftbar.upper_bound_latency());
  rep.caft0 = norm(caft.zero_crash_latency());
  rep.caft_ub = norm(caft.upper_bound_latency());
  if (ftsa_crash.success) rep.ftsa_c = norm(ftsa_crash.latency);
  if (ftbar_crash.success) rep.ftbar_c = norm(ftbar_crash.latency);
  if (caft_crash.success) rep.caft_c = norm(caft_crash.latency);

  rep.ovh_ftsa0 = overhead_percent(ftsa.zero_crash_latency(), caft_star);
  rep.ovh_ftbar0 = overhead_percent(ftbar.zero_crash_latency(), caft_star);
  rep.ovh_caft0 = overhead_percent(caft.zero_crash_latency(), caft_star);
  if (ftsa_crash.success)
    rep.ovh_ftsa_c = overhead_percent(ftsa_crash.latency, caft_star);
  if (ftbar_crash.success)
    rep.ovh_ftbar_c = overhead_percent(ftbar_crash.latency, caft_star);
  if (caft_crash.success)
    rep.ovh_caft_c = overhead_percent(caft_crash.latency, caft_star);

  rep.msgs_ftsa = static_cast<double>(ftsa.message_count());
  rep.msgs_ftbar = static_cast<double>(ftbar.message_count());
  rep.msgs_caft = static_cast<double>(caft.message_count());
  const double edges = static_cast<double>(graph.edge_count());
  if (edges > 0) {
    rep.mpe_ftsa = rep.msgs_ftsa / edges;
    rep.mpe_ftbar = rep.msgs_ftbar / edges;
    rep.mpe_caft = rep.msgs_caft / edges;
  }
  return rep;
}

}  // namespace

std::size_t experiment_thread_count() { return default_thread_count(); }

std::vector<PointAverages> run_experiment(const ExperimentConfig& config) {
  CAFT_CHECK_MSG(config.crashes <= config.eps,
                 "crash count above eps would break the guarantee");
  std::vector<PointAverages> points;
  points.reserve(config.granularities.size());
  Rng master(config.seed);
  const std::size_t threads =
      std::min(experiment_thread_count(), config.graphs_per_point);

  for (const double granularity : config.granularities) {
    // Deterministic per-repetition streams: split sequentially up front so
    // the thread schedule cannot influence the draws.
    std::vector<Rng> streams;
    streams.reserve(config.graphs_per_point);
    for (std::size_t rep = 0; rep < config.graphs_per_point; ++rep)
      streams.push_back(master.split());

    std::vector<RepMetrics> reps(config.graphs_per_point);
    const auto worker = [&](std::size_t first, std::size_t stride) {
      for (std::size_t rep = first; rep < reps.size(); rep += stride)
        reps[rep] = run_repetition(config, granularity, streams[rep]);
    };
    if (threads <= 1) {
      worker(0, 1);
    } else {
      std::vector<std::thread> pool;
      pool.reserve(threads);
      for (std::size_t t = 0; t < threads; ++t)
        pool.emplace_back(worker, t, threads);
      for (std::thread& thread : pool) thread.join();
    }

    // Fold in repetition order: bit-for-bit deterministic regardless of the
    // thread interleaving above.
    Mean ff_caft, ff_ftbar, ftsa0, ftsa_ub, ftbar0, ftbar_ub, caft0, caft_ub;
    Mean ftsa_c, ftbar_c, caft_c;
    Mean ovh_ftsa0, ovh_ftsa_c, ovh_ftbar0, ovh_ftbar_c, ovh_caft0, ovh_caft_c;
    Mean msgs_ftsa, msgs_ftbar, msgs_caft, mpe_ftsa, mpe_ftbar, mpe_caft;
    std::size_t crash_failures = 0;
    for (const RepMetrics& rep : reps) {
      if (rep.crash_failure) ++crash_failures;
      fold(ff_caft, rep.ff_caft);
      fold(ff_ftbar, rep.ff_ftbar);
      fold(ftsa0, rep.ftsa0);
      fold(ftsa_ub, rep.ftsa_ub);
      fold(ftsa_c, rep.ftsa_c);
      fold(ftbar0, rep.ftbar0);
      fold(ftbar_ub, rep.ftbar_ub);
      fold(ftbar_c, rep.ftbar_c);
      fold(caft0, rep.caft0);
      fold(caft_ub, rep.caft_ub);
      fold(caft_c, rep.caft_c);
      fold(ovh_ftsa0, rep.ovh_ftsa0);
      fold(ovh_ftsa_c, rep.ovh_ftsa_c);
      fold(ovh_ftbar0, rep.ovh_ftbar0);
      fold(ovh_ftbar_c, rep.ovh_ftbar_c);
      fold(ovh_caft0, rep.ovh_caft0);
      fold(ovh_caft_c, rep.ovh_caft_c);
      fold(msgs_ftsa, rep.msgs_ftsa);
      fold(msgs_ftbar, rep.msgs_ftbar);
      fold(msgs_caft, rep.msgs_caft);
      fold(mpe_ftsa, rep.mpe_ftsa);
      fold(mpe_ftbar, rep.mpe_ftbar);
      fold(mpe_caft, rep.mpe_caft);
    }

    PointAverages point;
    point.granularity = granularity;
    point.ff_caft = ff_caft.value();
    point.ff_ftbar = ff_ftbar.value();
    point.ftsa0 = ftsa0.value();
    point.ftsa_ub = ftsa_ub.value();
    point.ftbar0 = ftbar0.value();
    point.ftbar_ub = ftbar_ub.value();
    point.caft0 = caft0.value();
    point.caft_ub = caft_ub.value();
    point.ftsa_c = ftsa_c.value();
    point.ftbar_c = ftbar_c.value();
    point.caft_c = caft_c.value();
    point.ovh_ftsa0 = ovh_ftsa0.value();
    point.ovh_ftsa_c = ovh_ftsa_c.value();
    point.ovh_ftbar0 = ovh_ftbar0.value();
    point.ovh_ftbar_c = ovh_ftbar_c.value();
    point.ovh_caft0 = ovh_caft0.value();
    point.ovh_caft_c = ovh_caft_c.value();
    point.msgs_ftsa = msgs_ftsa.value();
    point.msgs_ftbar = msgs_ftbar.value();
    point.msgs_caft = msgs_caft.value();
    point.msgs_per_edge_ftsa = mpe_ftsa.value();
    point.msgs_per_edge_ftbar = mpe_ftbar.value();
    point.msgs_per_edge_caft = mpe_caft.value();
    point.crash_failures = crash_failures;
    points.push_back(point);
  }
  return points;
}

}  // namespace caft
