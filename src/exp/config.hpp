/// \file config.hpp
/// Experiment configurations replicating the paper's Section 6 protocol:
/// random graphs with 80-120 tasks, fan-out 1-3, edge volumes U[50, 150],
/// unit link delays U[0.5, 1], granularity sweeps of type A ([0.2, 2.0] step
/// 0.2) and type B ([1, 10] step 1), 60 graphs per point, on m = 10 or 20
/// fully-connected processors with ε ∈ {1, 3, 5}.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "dag/generators.hpp"
#include "platform/cost_synthesis.hpp"

namespace caft {

/// One figure's worth of experiment.
struct ExperimentConfig {
  std::string name;                  ///< e.g. "fig1"
  std::vector<double> granularities; ///< sweep points (x axis)
  std::size_t proc_count = 10;       ///< m
  std::size_t eps = 1;               ///< ε, replicas per task = ε+1
  std::size_t crashes = 1;           ///< processors killed in the crash runs
  std::size_t graphs_per_point = 60; ///< repetitions averaged per point
  /// Fault-tolerant algorithms to compare, by SchedulerRegistry name, in
  /// report-column order (the paper compares these three). The fault-free
  /// baselines (HEFT ≡ CAFT*, FTBAR at ε=0) always run in addition.
  std::vector<std::string> algorithms = {"ftsa", "ftbar", "caft"};
  RandomDagParams dag;               ///< paper defaults already set
  CostSynthesisParams costs;         ///< granularity is overridden per point
  std::uint64_t seed = 20080201;     ///< RR-6606 is dated February 2008
};

/// Granularity sweep A: 0.2 to 2.0, step 0.2 (Figures 1-3).
[[nodiscard]] std::vector<double> granularity_sweep_a();
/// Granularity sweep B: 1 to 10, step 1 (Figures 4-6).
[[nodiscard]] std::vector<double> granularity_sweep_b();

/// The paper's six figures.
[[nodiscard]] ExperimentConfig figure1();  ///< sweep A, m=10, ε=1, 1 crash
[[nodiscard]] ExperimentConfig figure2();  ///< sweep A, m=10, ε=3, 2 crashes
[[nodiscard]] ExperimentConfig figure3();  ///< sweep A, m=20, ε=5, 3 crashes
[[nodiscard]] ExperimentConfig figure4();  ///< sweep B, m=10, ε=1, 1 crash
[[nodiscard]] ExperimentConfig figure5();  ///< sweep B, m=10, ε=3, 2 crashes
[[nodiscard]] ExperimentConfig figure6();  ///< sweep B, m=20, ε=5, 3 crashes

/// Scales down repetitions (for quick runs / CI): keeps the sweep, divides
/// graphs_per_point by `factor` (minimum 1).
[[nodiscard]] ExperimentConfig scaled_down(ExperimentConfig config,
                                           std::size_t factor);

/// Reads the CAFT_BENCH_REPS environment variable: repetitions per point for
/// bench binaries (default `fallback`). Lets `for b in build/bench/*; do $b;
/// done` finish promptly while full 60-rep runs stay one env var away.
[[nodiscard]] std::size_t bench_reps_from_env(std::size_t fallback);

}  // namespace caft
