#include "exp/config.hpp"

#include <algorithm>
#include <cstdlib>

namespace caft {

std::vector<double> granularity_sweep_a() {
  std::vector<double> sweep;
  for (int i = 1; i <= 10; ++i) sweep.push_back(0.2 * i);
  return sweep;
}

std::vector<double> granularity_sweep_b() {
  std::vector<double> sweep;
  for (int i = 1; i <= 10; ++i) sweep.push_back(static_cast<double>(i));
  return sweep;
}

namespace {

ExperimentConfig base_config(std::string name, std::vector<double> sweep,
                             std::size_t m, std::size_t eps,
                             std::size_t crashes) {
  ExperimentConfig config;
  config.name = std::move(name);
  config.granularities = std::move(sweep);
  config.proc_count = m;
  config.eps = eps;
  config.crashes = crashes;
  return config;
}

}  // namespace

ExperimentConfig figure1() {
  return base_config("fig1", granularity_sweep_a(), 10, 1, 1);
}
ExperimentConfig figure2() {
  return base_config("fig2", granularity_sweep_a(), 10, 3, 2);
}
ExperimentConfig figure3() {
  return base_config("fig3", granularity_sweep_a(), 20, 5, 3);
}
ExperimentConfig figure4() {
  return base_config("fig4", granularity_sweep_b(), 10, 1, 1);
}
ExperimentConfig figure5() {
  return base_config("fig5", granularity_sweep_b(), 10, 3, 2);
}
ExperimentConfig figure6() {
  return base_config("fig6", granularity_sweep_b(), 20, 5, 3);
}

ExperimentConfig scaled_down(ExperimentConfig config, std::size_t factor) {
  config.graphs_per_point =
      std::max<std::size_t>(1, config.graphs_per_point / std::max<std::size_t>(1, factor));
  return config;
}

std::size_t bench_reps_from_env(std::size_t fallback) {
  // ftsched-lint: allow(clock-rng) CAFT_BENCH_REPS scales bench repetition
  // counts only — it is read once, before any campaign, and can never
  // reach a summary.
  const char* env = std::getenv("CAFT_BENCH_REPS");
  if (env == nullptr) return fallback;
  const long parsed = std::strtol(env, nullptr, 10);
  if (parsed < 1) return fallback;
  return static_cast<std::size_t>(parsed);
}

}  // namespace caft
