#include "exp/report.hpp"

#include <ostream>

#include "api/scheduler.hpp"  // ftsched::display_name
#include "common/check.hpp"

namespace caft {

namespace {

/// Display label of a registry algorithm name ("ftsa" -> "FTSA").
std::string label_of(const std::string& algorithm) {
  return ftsched::display_name(algorithm);
}

std::string crash_label(const ExperimentConfig& config,
                        const std::string& algorithm) {
  return label_of(algorithm) + " " + std::to_string(config.crashes) +
         "-crash";
}

/// The point's averages for `name`; throws when the runner did not produce
/// them (config/points mismatch).
const AlgoAverages& averages_of(const PointAverages& point,
                                const std::string& name) {
  const AlgoAverages* averages = point.algo(name);
  CAFT_CHECK_MSG(averages != nullptr,
                 "no averages for algorithm '" + name +
                     "' — points were produced by a different config");
  return *averages;
}

}  // namespace

Table panel_a(const ExperimentConfig& config,
              const std::vector<PointAverages>& points) {
  std::vector<std::string> header = {"granularity"};
  for (const std::string& algo : config.algorithms) {
    header.push_back(label_of(algo) + " 0-crash");
    header.push_back(label_of(algo) + " UB");
  }
  header.push_back("FaultFree-CAFT");
  header.push_back("FaultFree-FTBAR");
  Table table(config.name + "(a): average normalized latency (eps=" +
                  std::to_string(config.eps) +
                  ", m=" + std::to_string(config.proc_count) + ")",
              header);
  for (const PointAverages& p : points) {
    std::vector<Cell> row = {p.granularity};
    for (const std::string& algo : config.algorithms) {
      const AlgoAverages& a = averages_of(p, algo);
      row.emplace_back(a.latency0);
      row.emplace_back(a.latency_ub);
    }
    row.emplace_back(p.ff_caft);
    row.emplace_back(p.ff_ftbar);
    table.add_row(row);
  }
  return table;
}

Table panel_b(const ExperimentConfig& config,
              const std::vector<PointAverages>& points) {
  std::vector<std::string> header = {"granularity"};
  for (const std::string& algo : config.algorithms) {
    header.push_back(label_of(algo) + " 0-crash");
    header.push_back(crash_label(config, algo));
  }
  Table table(config.name + "(b): normalized latency, 0 crash vs " +
                  std::to_string(config.crashes) + " crash",
              header);
  for (const PointAverages& p : points) {
    std::vector<Cell> row = {p.granularity};
    for (const std::string& algo : config.algorithms) {
      const AlgoAverages& a = averages_of(p, algo);
      row.emplace_back(a.latency0);
      row.emplace_back(a.latency_crash);
    }
    table.add_row(row);
  }
  return table;
}

Table panel_c(const ExperimentConfig& config,
              const std::vector<PointAverages>& points) {
  std::vector<std::string> header = {"granularity"};
  for (const std::string& algo : config.algorithms) {
    header.push_back(label_of(algo) + " 0-crash");
    header.push_back(crash_label(config, algo));
  }
  Table table(config.name + "(c): average overhead (%) vs fault-free CAFT",
              header);
  for (const PointAverages& p : points) {
    std::vector<Cell> row = {p.granularity};
    for (const std::string& algo : config.algorithms) {
      const AlgoAverages& a = averages_of(p, algo);
      row.emplace_back(a.overhead0);
      row.emplace_back(a.overhead_crash);
    }
    table.add_row(row);
  }
  return table;
}

Table panel_messages(const ExperimentConfig& config,
                     const std::vector<PointAverages>& points) {
  std::vector<std::string> header = {"granularity"};
  for (const std::string& algo : config.algorithms)
    header.push_back(label_of(algo) + " msgs");
  for (const std::string& algo : config.algorithms)
    header.push_back(label_of(algo) + " msgs/edge");
  Table table(config.name + ": average inter-processor messages", header);
  for (const PointAverages& p : points) {
    std::vector<Cell> row = {p.granularity};
    for (const std::string& algo : config.algorithms)
      row.emplace_back(averages_of(p, algo).messages);
    for (const std::string& algo : config.algorithms)
      row.emplace_back(averages_of(p, algo).messages_per_edge);
    table.add_row(row);
  }
  return table;
}

void report_figure(std::ostream& os, const ExperimentConfig& config,
                   const std::vector<PointAverages>& points,
                   const std::string& csv_prefix) {
  const Table a = panel_a(config, points);
  const Table b = panel_b(config, points);
  const Table c = panel_c(config, points);
  const Table msgs = panel_messages(config, points);
  a.print(os);
  os << '\n';
  b.print(os);
  os << '\n';
  c.print(os);
  os << '\n';
  msgs.print(os);
  os << '\n';

  std::size_t crash_failures = 0;
  for (const PointAverages& p : points) crash_failures += p.crash_failures;
  os << "crash re-executions with lost results: " << crash_failures
     << " (expected 0)\n";

  if (!csv_prefix.empty()) {
    a.save_csv(csv_prefix + "_a.csv");
    b.save_csv(csv_prefix + "_b.csv");
    c.save_csv(csv_prefix + "_c.csv");
    msgs.save_csv(csv_prefix + "_msgs.csv");
  }
}

}  // namespace caft
