#include "exp/report.hpp"

#include <ostream>

namespace caft {

namespace {

std::string crash_label(const ExperimentConfig& config, const char* alg) {
  return std::string(alg) + " " + std::to_string(config.crashes) + "-crash";
}

}  // namespace

Table panel_a(const ExperimentConfig& config,
              const std::vector<PointAverages>& points) {
  Table table(config.name + "(a): average normalized latency (eps=" +
                  std::to_string(config.eps) +
                  ", m=" + std::to_string(config.proc_count) + ")",
              {"granularity", "FTSA 0-crash", "FTSA UB", "FTBAR 0-crash",
               "FTBAR UB", "CAFT 0-crash", "CAFT UB", "FaultFree-CAFT",
               "FaultFree-FTBAR"});
  for (const PointAverages& p : points)
    table.add_row({p.granularity, p.ftsa0, p.ftsa_ub, p.ftbar0, p.ftbar_ub,
                   p.caft0, p.caft_ub, p.ff_caft, p.ff_ftbar});
  return table;
}

Table panel_b(const ExperimentConfig& config,
              const std::vector<PointAverages>& points) {
  Table table(config.name + "(b): normalized latency, 0 crash vs " +
                  std::to_string(config.crashes) + " crash",
              {"granularity", "FTSA 0-crash", crash_label(config, "FTSA"),
               "FTBAR 0-crash", crash_label(config, "FTBAR"), "CAFT 0-crash",
               crash_label(config, "CAFT")});
  for (const PointAverages& p : points)
    table.add_row({p.granularity, p.ftsa0, p.ftsa_c, p.ftbar0, p.ftbar_c,
                   p.caft0, p.caft_c});
  return table;
}

Table panel_c(const ExperimentConfig& config,
              const std::vector<PointAverages>& points) {
  Table table(config.name + "(c): average overhead (%) vs fault-free CAFT",
              {"granularity", "FTSA 0-crash", crash_label(config, "FTSA"),
               "FTBAR 0-crash", crash_label(config, "FTBAR"), "CAFT 0-crash",
               crash_label(config, "CAFT")});
  for (const PointAverages& p : points)
    table.add_row({p.granularity, p.ovh_ftsa0, p.ovh_ftsa_c, p.ovh_ftbar0,
                   p.ovh_ftbar_c, p.ovh_caft0, p.ovh_caft_c});
  return table;
}

Table panel_messages(const ExperimentConfig& config,
                     const std::vector<PointAverages>& points) {
  Table table(config.name + ": average inter-processor messages",
              {"granularity", "FTSA msgs", "FTBAR msgs", "CAFT msgs",
               "FTSA msgs/edge", "FTBAR msgs/edge", "CAFT msgs/edge"});
  for (const PointAverages& p : points)
    table.add_row({p.granularity, p.msgs_ftsa, p.msgs_ftbar, p.msgs_caft,
                   p.msgs_per_edge_ftsa, p.msgs_per_edge_ftbar,
                   p.msgs_per_edge_caft});
  return table;
}

void report_figure(std::ostream& os, const ExperimentConfig& config,
                   const std::vector<PointAverages>& points,
                   const std::string& csv_prefix) {
  const Table a = panel_a(config, points);
  const Table b = panel_b(config, points);
  const Table c = panel_c(config, points);
  const Table msgs = panel_messages(config, points);
  a.print(os);
  os << '\n';
  b.print(os);
  os << '\n';
  c.print(os);
  os << '\n';
  msgs.print(os);
  os << '\n';

  std::size_t crash_failures = 0;
  for (const PointAverages& p : points) crash_failures += p.crash_failures;
  os << "crash re-executions with lost results: " << crash_failures
     << " (expected 0)\n";

  if (!csv_prefix.empty()) {
    a.save_csv(csv_prefix + "_a.csv");
    b.save_csv(csv_prefix + "_b.csv");
    c.save_csv(csv_prefix + "_c.csv");
    msgs.save_csv(csv_prefix + "_msgs.csv");
  }
}

}  // namespace caft
