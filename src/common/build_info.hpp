/// \file common/build_info.hpp
/// Build provenance: which commit, compiler and build type produced this
/// binary. Values are configured by CMake (cmake/build_info.h.in) at
/// configure time; when the generated header is absent (e.g. a bare
/// compiler invocation outside CMake) every field degrades to "unknown"
/// so the library still builds.
#pragma once

#include <string>

namespace caft {

struct BuildInfo {
  std::string git_sha;     ///< `git rev-parse HEAD` at configure time
  std::string compiler;    ///< compiler id + version
  std::string build_type;  ///< CMAKE_BUILD_TYPE (Release, Debug, ...)
};

/// Provenance of this binary.
[[nodiscard]] const BuildInfo& build_info();

/// One-line human-readable form for `--version`:
/// "caft <sha> (<compiler>, <build_type>)".
[[nodiscard]] std::string version_line();

}  // namespace caft
