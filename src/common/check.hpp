/// \file check.hpp
/// Lightweight precondition / invariant checking. Violations indicate
/// programming errors inside the library or misuse of its API, so they throw
/// `std::logic_error` with a formatted location message; they are *not* used
/// for recoverable conditions.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>

namespace caft {

/// Thrown when a CAFT_CHECK precondition or invariant fails.
class CheckError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {
[[noreturn]] inline void check_failed(std::string_view expr, std::string_view file,
                                      int line, std::string_view msg) {
  std::ostringstream os;
  os << "check failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}
}  // namespace detail

}  // namespace caft

/// Check `cond`; on failure throw CheckError naming the expression/location.
#define CAFT_CHECK(cond)                                                \
  do {                                                                  \
    if (!(cond)) ::caft::detail::check_failed(#cond, __FILE__, __LINE__, ""); \
  } while (false)

/// CAFT_CHECK with an extra human-readable message.
#define CAFT_CHECK_MSG(cond, msg)                                         \
  do {                                                                    \
    if (!(cond)) ::caft::detail::check_failed(#cond, __FILE__, __LINE__, (msg)); \
  } while (false)
