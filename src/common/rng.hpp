/// \file rng.hpp
/// Deterministic, explicitly-seeded random number generation for experiment
/// reproducibility. Wraps xoshiro256** (public-domain algorithm by Blackman &
/// Vigna) seeded through SplitMix64, so a single 64-bit seed fully determines
/// every experiment; all figure benches print their seed.
#pragma once

#include <cstdint>
#include <vector>

#include "common/check.hpp"

namespace caft {

/// xoshiro256** generator with convenience draws used across the library.
/// Satisfies UniformRandomBitGenerator so it also plugs into <random> if
/// ever needed, but all library sampling goes through the members below to
/// keep results stable across standard-library implementations.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from `seed` via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  [[nodiscard]] static constexpr result_type min() { return 0; }
  [[nodiscard]] static constexpr result_type max() { return ~result_type{0}; }

  /// Next raw 64-bit draw.
  result_type operator()();

  /// Uniform double in [0, 1).
  double uniform01();
  /// Uniform double in [lo, hi). Requires lo <= hi.
  double uniform(double lo, double hi);
  /// Uniform integer in the inclusive range [lo, hi]. Requires lo <= hi.
  std::uint64_t uniform_int(std::uint64_t lo, std::uint64_t hi);
  /// Bernoulli draw with probability `p` of true.
  bool bernoulli(double p);

  /// Exponential draw with rate `rate` (mean 1/rate). Requires rate > 0.
  /// Used for memoryless processor lifetimes in the fault-injection
  /// campaign (constant hazard rate).
  double exponential(double rate);
  /// Weibull draw with shape k and scale λ (both > 0): λ·(-ln U)^(1/k).
  /// Shape < 1 models infant mortality, shape > 1 wear-out — the two
  /// lifetime regimes the exponential cannot express.
  double weibull(double shape, double scale);

  /// Fisher–Yates shuffle of `items`.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(uniform_int(0, i - 1));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Draws `k` distinct values from {0, 1, ..., n-1} (k <= n), in random order.
  std::vector<std::size_t> sample_without_replacement(std::size_t n, std::size_t k);

  /// Derives an independent child generator; used to give each experiment
  /// repetition its own stream so repetitions can be reordered freely.
  [[nodiscard]] Rng split();

 private:
  std::uint64_t s_[4];
};

}  // namespace caft
