#include "common/rng.hpp"

#include <cmath>

namespace caft {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
  // All-zero state would lock xoshiro at zero; SplitMix64 cannot emit four
  // zeros for any seed, but guard anyway for safety against future edits.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform01() {
  // 53 top bits -> double in [0,1) with full mantissa resolution.
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  CAFT_CHECK_MSG(lo <= hi, "uniform(lo, hi) requires lo <= hi");
  return lo + (hi - lo) * uniform01();
}

std::uint64_t Rng::uniform_int(std::uint64_t lo, std::uint64_t hi) {
  CAFT_CHECK_MSG(lo <= hi, "uniform_int(lo, hi) requires lo <= hi");
  const std::uint64_t span = hi - lo;
  if (span == max()) return (*this)();
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t n = span + 1;
  const std::uint64_t limit = max() - max() % n;
  std::uint64_t draw;
  do {
    draw = (*this)();
  } while (draw >= limit);
  return lo + draw % n;
}

bool Rng::bernoulli(double p) { return uniform01() < p; }

double Rng::exponential(double rate) {
  CAFT_CHECK_MSG(rate > 0.0, "exponential(rate) requires rate > 0");
  // -log1p(-U) with U in [0,1) is finite and positive for all draws.
  return -std::log1p(-uniform01()) / rate;
}

double Rng::weibull(double shape, double scale) {
  CAFT_CHECK_MSG(shape > 0.0 && scale > 0.0,
                 "weibull(shape, scale) requires positive parameters");
  return scale * std::pow(-std::log1p(-uniform01()), 1.0 / shape);
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n,
                                                         std::size_t k) {
  CAFT_CHECK_MSG(k <= n, "cannot sample more items than the population holds");
  std::vector<std::size_t> pool(n);
  for (std::size_t i = 0; i < n; ++i) pool[i] = i;
  // Partial Fisher–Yates: the first k positions become the sample.
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j =
        static_cast<std::size_t>(uniform_int(i, n - 1));
    using std::swap;
    swap(pool[i], pool[j]);
  }
  pool.resize(k);
  return pool;
}

Rng Rng::split() {
  const std::uint64_t child_seed = (*this)() ^ 0xA5A5A5A5A5A5A5A5ULL;
  return Rng(child_seed);
}

}  // namespace caft
