/// \file ids.hpp
/// Strongly-typed integral identifiers for tasks, processors, links, and
/// replicas. A dedicated wrapper per entity prevents the classic "passed the
/// processor index where a task index was expected" bug at compile time while
/// staying a zero-cost abstraction (a single 32-bit value).
#pragma once

#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>

namespace caft {

/// CRTP-free tagged id. `Tag` is an empty struct unique per entity kind.
template <typename Tag>
class Id {
 public:
  using value_type = std::uint32_t;

  constexpr Id() = default;
  constexpr explicit Id(value_type v) : value_(v) {}

  /// Underlying integral value, for indexing into dense arrays.
  [[nodiscard]] constexpr value_type value() const { return value_; }
  /// Convenience conversion for container indexing.
  [[nodiscard]] constexpr std::size_t index() const { return value_; }

  /// Sentinel meaning "no entity". Default-constructed ids are invalid.
  [[nodiscard]] static constexpr Id invalid() {
    return Id(std::numeric_limits<value_type>::max());
  }
  [[nodiscard]] constexpr bool valid() const { return value_ != invalid().value_; }

  friend constexpr auto operator<=>(Id, Id) = default;

 private:
  value_type value_ = std::numeric_limits<value_type>::max();
};

struct TaskTag {};
struct ProcTag {};
struct LinkTag {};

/// A node of the task graph (the paper's t_i).
using TaskId = Id<TaskTag>;
/// A processor of the platform (the paper's P_k).
using ProcId = Id<ProcTag>;
/// A directed communication link l_{P_k P_h}.
using LinkId = Id<LinkTag>;

/// Index of a replica of a task within its replica set B(t); 0 <= r <= eps.
using ReplicaIndex = std::uint32_t;

/// Globally identifies one replica t^{(r)} of task t.
struct ReplicaRef {
  TaskId task;
  ReplicaIndex replica = 0;

  friend constexpr auto operator<=>(const ReplicaRef&, const ReplicaRef&) = default;
};

}  // namespace caft

template <typename Tag>
struct std::hash<caft::Id<Tag>> {
  std::size_t operator()(caft::Id<Tag> id) const noexcept {
    return std::hash<typename caft::Id<Tag>::value_type>{}(id.value());
  }
};

template <>
struct std::hash<caft::ReplicaRef> {
  std::size_t operator()(const caft::ReplicaRef& r) const noexcept {
    const std::uint64_t packed =
        (static_cast<std::uint64_t>(r.task.value()) << 32) | r.replica;
    return std::hash<std::uint64_t>{}(packed);
  }
};
