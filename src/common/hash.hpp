/// \file hash.hpp
/// FNV-1a 64-bit content hashing — the repo's one content-address
/// derivation. The campaign server's content-addressed cache and the
/// Session batch coordinator key instance payloads by the same function so
/// "same bytes" means "same key" everywhere an instance crosses a process
/// or connection boundary (the constants match SharedReplayMemo::KeyHash,
/// the other FNV user in the tree).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace caft {

/// FNV-1a over `bytes`; deterministic across platforms and runs (no seed,
/// no pointer mixing) — safe to use as a wire-visible content address.
[[nodiscard]] inline std::uint64_t fnv1a64(std::string_view bytes) {
  std::uint64_t hash = 1469598103934665603ull;
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  return hash;
}

}  // namespace caft
