/// \file parallel.hpp
/// Shared worker-thread sizing for the parallel drivers: the experiment
/// runner's repetition fan-out (exp/runner) and the fault-injection
/// campaign's replay fan-out (campaign/campaign). Both honour the
/// CAFT_THREADS environment variable so a single knob pins the whole
/// binary to a thread budget.
#pragma once

#include <cstddef>

namespace caft {

/// Worker threads a parallel driver should use: the CAFT_THREADS environment
/// variable when set to a positive integer, else the hardware concurrency,
/// else 1.
[[nodiscard]] std::size_t default_thread_count();

}  // namespace caft
