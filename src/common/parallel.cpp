#include "common/parallel.hpp"

#include <cstdlib>
#include <thread>

namespace caft {

std::size_t default_thread_count() {
  if (const char* env = std::getenv("CAFT_THREADS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed >= 1) return static_cast<std::size_t>(parsed);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace caft
