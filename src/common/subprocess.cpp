#include "common/subprocess.hpp"

#include <cstddef>
#include <cstdlib>
#include <sstream>
#include <tuple>

#include "common/check.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <string.h>
#include <sys/wait.h>
#include <unistd.h>

namespace caft {

namespace {

/// Pipe ends are plain ints; -1 = closed/absent.
void close_fd(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

/// Writing a work order into a child that already died must surface as a
/// short write (EPIPE), not kill the coordinator with SIGPIPE. The
/// disposition is process-wide, so install the ignore handler exactly once;
/// coordinators and CLIs have no other use for SIGPIPE.
void ignore_sigpipe_once() {
  static const bool installed = [] {
    struct sigaction action {};
    action.sa_handler = SIG_IGN;
    ::sigemptyset(&action.sa_mask);
    ::sigaction(SIGPIPE, &action, nullptr);
    return true;
  }();
  (void)installed;
}

}  // namespace

std::string SubprocessResult::describe_failure() const {
  std::ostringstream os;
  if (!spawned) {
    os << "spawn failed: " << error;
  } else if (!exited) {
    os << "killed by signal " << term_signal;
  } else {
    os << "exited with status " << exit_code;
  }
  if (!err.empty()) {
    // First stderr line only — enough to say *why* without dumping logs.
    const std::size_t eol = err.find('\n');
    os << " — " << err.substr(0, eol == std::string::npos ? err.size() : eol);
  }
  return os.str();
}

SubprocessResult run_subprocess(const std::vector<std::string>& argv,
                                const std::string& input,
                                const StdoutSink& on_stdout) {
  SubprocessResult result;
  CAFT_CHECK_MSG(!argv.empty(), "subprocess argv must name a program");
  ignore_sigpipe_once();

  // Close-on-exec from birth: several dispatcher threads spawn workers
  // concurrently, and a worker forked between another thread's pipe() and
  // its parent-side close() must not inherit (and hold open) that pipe's
  // write end — the other worker's stdout would never reach EOF until this
  // one exits. dup2 below clears CLOEXEC on the child's own stdio copies.
  int in_pipe[2] = {-1, -1};   // parent writes [1] -> child stdin [0]
  int out_pipe[2] = {-1, -1};  // child stdout [1] -> parent reads [0]
  int err_pipe[2] = {-1, -1};  // child stderr [1] -> parent reads [0]
#if defined(__linux__)
  const auto make_pipe = [](int fds[2]) { return ::pipe2(fds, O_CLOEXEC); };
#else
  const auto make_pipe = [](int fds[2]) {
    if (::pipe(fds) != 0) return -1;
    ::fcntl(fds[0], F_SETFD, FD_CLOEXEC);
    ::fcntl(fds[1], F_SETFD, FD_CLOEXEC);
    return 0;
  };
#endif
  if (make_pipe(in_pipe) != 0 || make_pipe(out_pipe) != 0 ||
      make_pipe(err_pipe) != 0) {
    result.error = std::string("pipe: ") + ::strerror(errno);
    for (int* p : {in_pipe, out_pipe, err_pipe}) {
      close_fd(p[0]);
      close_fd(p[1]);
    }
    return result;
  }

  // Assemble the exec argv *before* forking: the parent may be
  // multi-threaded, so the child between fork and exec must not touch the
  // heap (another thread could hold the allocator lock at fork time).
  std::vector<char*> args;
  args.reserve(argv.size() + 1);
  for (const std::string& arg : argv)
    args.push_back(const_cast<char*>(arg.c_str()));
  args.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) {
    result.error = std::string("fork: ") + ::strerror(errno);
    for (int* p : {in_pipe, out_pipe, err_pipe}) {
      close_fd(p[0]);
      close_fd(p[1]);
    }
    return result;
  }

  if (pid == 0) {
    // Child: wire the pipe ends onto stdio and exec — nothing but dup2 /
    // close / exec here (see the argv assembly above the fork).
    ::dup2(in_pipe[0], STDIN_FILENO);
    ::dup2(out_pipe[1], STDOUT_FILENO);
    ::dup2(err_pipe[1], STDERR_FILENO);
    for (int* p : {in_pipe, out_pipe, err_pipe}) {
      ::close(p[0]);
      ::close(p[1]);
    }
    ::execvp(args[0], args.data());
    // exec failed: report on the (captured) stderr and die with the
    // conventional "command not found / not executable" status.
    const char* msg = "exec failed: ";
    (void)!::write(STDERR_FILENO, msg, ::strlen(msg));
    (void)!::write(STDERR_FILENO, args[0], ::strlen(args[0]));
    (void)!::write(STDERR_FILENO, "\n", 1);
    ::_exit(127);
  }

  // Parent: keep only our ends.
  close_fd(in_pipe[0]);
  close_fd(out_pipe[1]);
  close_fd(err_pipe[1]);
  result.spawned = true;

  std::size_t written = 0;
  if (input.empty()) close_fd(in_pipe[1]);

  // Poll loop: feed stdin and drain stdout/stderr concurrently so neither
  // direction can block forever on a full pipe.
  while (in_pipe[1] >= 0 || out_pipe[0] >= 0 || err_pipe[0] >= 0) {
    struct pollfd fds[3];
    int nfds = 0;
    int in_slot = -1, out_slot = -1, err_slot = -1;
    if (in_pipe[1] >= 0) {
      in_slot = nfds;
      fds[nfds++] = {in_pipe[1], POLLOUT, 0};
    }
    if (out_pipe[0] >= 0) {
      out_slot = nfds;
      fds[nfds++] = {out_pipe[0], POLLIN, 0};
    }
    if (err_pipe[0] >= 0) {
      err_slot = nfds;
      fds[nfds++] = {err_pipe[0], POLLIN, 0};
    }
    if (::poll(fds, static_cast<nfds_t>(nfds), -1) < 0) {
      if (errno == EINTR) continue;
      break;  // poll itself broke; fall through to reap what we have
    }

    if (in_slot >= 0 && (fds[in_slot].revents & (POLLOUT | POLLERR | POLLHUP))) {
      const ssize_t n = ::write(in_pipe[1], input.data() + written,
                                input.size() - written);
      if (n > 0) written += static_cast<std::size_t>(n);
      // EPIPE / error / done: either way stop feeding and let the child
      // finish with what it got (a half-fed worker fails its own parse).
      if (n < 0 || written == input.size()) close_fd(in_pipe[1]);
    }
    for (const auto& [slot, pipe, sink] :
         {std::tuple<int, int*, std::string*>{out_slot, &out_pipe[0],
                                              &result.out},
          std::tuple<int, int*, std::string*>{err_slot, &err_pipe[0],
                                              &result.err}}) {
      if (slot < 0 || !(fds[slot].revents & (POLLIN | POLLERR | POLLHUP)))
        continue;
      char buffer[4096];
      const ssize_t n = ::read(*pipe, buffer, sizeof buffer);
      if (n > 0) {
        // stdout streams to the sink when one is installed (the sink must
        // not throw — see StdoutSink); stderr always accumulates.
        if (on_stdout && sink == &result.out)
          on_stdout(buffer, static_cast<std::size_t>(n));
        else
          sink->append(buffer, static_cast<std::size_t>(n));
      } else {
        close_fd(*pipe);
      }
    }
  }
  close_fd(in_pipe[1]);
  close_fd(out_pipe[0]);
  close_fd(err_pipe[0]);

  int status = 0;
  while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
  }
  if (WIFEXITED(status)) {
    result.exited = true;
    result.exit_code = WEXITSTATUS(status);
  } else if (WIFSIGNALED(status)) {
    result.exited = false;
    result.term_signal = WTERMSIG(status);
  }
  return result;
}

ScratchDir::ScratchDir(const std::string& prefix) {
  std::string name_template =
      (std::filesystem::temp_directory_path() / (prefix + "-XXXXXX"))
          .string();
  CAFT_CHECK_MSG(::mkdtemp(name_template.data()) != nullptr,
                 "could not create a scratch directory under " +
                     std::filesystem::temp_directory_path().string());
  path_ = name_template;
}

ScratchDir::~ScratchDir() {
  std::error_code ec;
  std::filesystem::remove_all(path_, ec);  // best effort
}

}  // namespace caft

#else  // !POSIX

namespace caft {

std::string SubprocessResult::describe_failure() const { return error; }

SubprocessResult run_subprocess(const std::vector<std::string>&,
                                const std::string&, const StdoutSink&) {
  SubprocessResult result;
  result.error = "subprocess execution is unavailable on this platform";
  return result;
}

ScratchDir::ScratchDir(const std::string&) {
  throw CheckError("scratch directories are unavailable on this platform");
}

ScratchDir::~ScratchDir() = default;

}  // namespace caft

#endif
