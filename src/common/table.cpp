#include "common/table.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/check.hpp"

namespace caft {

namespace {

std::string render_cell(const Cell& cell, int precision) {
  if (const auto* text = std::get_if<std::string>(&cell)) return *text;
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << std::get<double>(cell);
  return os.str();
}

}  // namespace

Table::Table(std::string title, std::vector<std::string> header)
    : title_(std::move(title)), header_(std::move(header)) {
  CAFT_CHECK_MSG(!header_.empty(), "a table needs at least one column");
}

void Table::add_row(std::vector<Cell> row) {
  CAFT_CHECK_MSG(row.size() == header_.size(),
                 "row width must match the header");
  rows_.push_back(std::move(row));
}

double Table::number_at(std::size_t row, std::size_t col) const {
  CAFT_CHECK(row < rows_.size() && col < header_.size());
  const auto* num = std::get_if<double>(&rows_[row][col]);
  CAFT_CHECK_MSG(num != nullptr, "cell does not hold a number");
  return *num;
}

void Table::print(std::ostream& os, int precision) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  std::vector<std::vector<std::string>> rendered;
  rendered.reserve(rows_.size());
  for (const auto& row : rows_) {
    std::vector<std::string> cells;
    cells.reserve(row.size());
    for (std::size_t c = 0; c < row.size(); ++c) {
      cells.push_back(render_cell(row[c], precision));
      widths[c] = std::max(widths[c], cells.back().size());
    }
    rendered.push_back(std::move(cells));
  }

  const auto rule = [&] {
    os << '+';
    for (const std::size_t w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };

  if (!title_.empty()) os << "== " << title_ << " ==\n";
  rule();
  os << '|';
  for (std::size_t c = 0; c < header_.size(); ++c)
    os << ' ' << std::setw(static_cast<int>(widths[c])) << header_[c] << " |";
  os << '\n';
  rule();
  for (const auto& cells : rendered) {
    os << '|';
    for (std::size_t c = 0; c < cells.size(); ++c)
      os << ' ' << std::setw(static_cast<int>(widths[c])) << cells[c] << " |";
    os << '\n';
  }
  rule();
}

void Table::write_csv(std::ostream& os, int precision) const {
  for (std::size_t c = 0; c < header_.size(); ++c) {
    if (c != 0) os << ',';
    os << header_[c];
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) os << ',';
      os << render_cell(row[c], precision);
    }
    os << '\n';
  }
}

bool Table::save_csv(const std::string& path, int precision) const {
  std::ofstream out(path);
  if (!out) return false;
  write_csv(out, precision);
  return static_cast<bool>(out);
}

namespace {

void write_json_string(std::ostream& os, const std::string& text) {
  os << '"';
  for (const char c : text) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\r': os << "\\r"; break;
      case '\b': os << "\\b"; break;
      case '\f': os << "\\f"; break;
      default:
        // RFC 8259 forbids raw control characters inside strings.
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          os << buffer;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void write_json_cell(std::ostream& os, const Cell& cell) {
  if (const auto* text = std::get_if<std::string>(&cell)) {
    write_json_string(os, *text);
    return;
  }
  const double value = std::get<double>(cell);
  // JSON has no Infinity/NaN literals; emit null for non-finite values.
  if (!std::isfinite(value)) {
    os << "null";
    return;
  }
  // Format locally so the caller's stream precision is left untouched.
  std::ostringstream formatted;
  formatted << std::setprecision(17) << value;
  os << formatted.str();
}

}  // namespace

void Table::write_json(std::ostream& os) const {
  os << "{\"title\": ";
  write_json_string(os, title_);
  os << ", \"rows\": [";
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    os << (r == 0 ? "" : ", ") << '{';
    for (std::size_t c = 0; c < header_.size(); ++c) {
      if (c != 0) os << ", ";
      write_json_string(os, header_[c]);
      os << ": ";
      write_json_cell(os, rows_[r][c]);
    }
    os << '}';
  }
  os << "]}\n";
}

bool Table::save_json(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  write_json(out);
  return static_cast<bool>(out);
}

}  // namespace caft
