/// \file table.hpp
/// Minimal tabular report writer used by the benchmark harness: aligned text
/// tables for the terminal and CSV for downstream plotting. Kept deliberately
/// simple — rows of doubles/strings with a header — because every figure of
/// the paper is a family of (x, series...) rows.
#pragma once

#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace caft {

/// One table cell: either text or a number (formatted with fixed precision).
using Cell = std::variant<std::string, double>;

/// Column-aligned table with a title, header and homogeneous-width rows.
class Table {
 public:
  Table(std::string title, std::vector<std::string> header);

  /// Appends a row; must match the header width.
  void add_row(std::vector<Cell> row);

  /// Number of data rows.
  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }
  [[nodiscard]] const std::vector<std::string>& header() const { return header_; }
  [[nodiscard]] const std::vector<std::vector<Cell>>& rows() const { return rows_; }
  [[nodiscard]] const std::string& title() const { return title_; }

  /// Numeric value at (row, col); throws if the cell holds text.
  [[nodiscard]] double number_at(std::size_t row, std::size_t col) const;

  /// Renders an aligned, boxed text table.
  void print(std::ostream& os, int precision = 3) const;

  /// Renders RFC-4180-ish CSV (no quoting needed for our content).
  void write_csv(std::ostream& os, int precision = 6) const;

  /// Writes the CSV form to `path`; returns false on I/O failure.
  bool save_csv(const std::string& path, int precision = 6) const;

  /// Renders a JSON object: {"title": ..., "rows": [{header: value, ...}]}.
  /// Numbers stay numbers (full shortest-round-trip precision); text cells
  /// become JSON strings with the usual escapes.
  void write_json(std::ostream& os) const;

  /// Writes the JSON form to `path`; returns false on I/O failure.
  bool save_json(const std::string& path) const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<Cell>> rows_;
};

}  // namespace caft
