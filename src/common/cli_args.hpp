/// \file cli_args.hpp
/// Minimal --flag value parser shared by the CLIs (tools/caft_cli,
/// tools/campaign_cli): flags are --name value pairs, bare flags
/// (--gantt) map to "true", anything not starting with -- is positional.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

namespace caft {

class CliArgs {
 public:
  /// Parses argv[first..argc); `first` skips the program name and any
  /// subcommand the caller consumed.
  CliArgs(int argc, char** argv, int first = 1) {
    for (int i = first; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) {
        positional_.push_back(std::move(key));
        continue;
      }
      key.erase(0, 2);
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        values_[key] = argv[++i];
      } else {
        values_[key] = "true";
      }
    }
  }

  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback = "") const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  [[nodiscard]] bool has(const std::string& key) const {
    return values_.count(key) != 0;
  }
  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : std::stod(it->second);
  }
  [[nodiscard]] std::size_t get_size(const std::string& key,
                                     std::size_t fallback) const {
    const auto it = values_.find(key);
    return it == values_.end()
               ? fallback
               : static_cast<std::size_t>(std::stoul(it->second));
  }
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace caft
