/// \file cli_args.hpp
/// Minimal --flag value parser shared by the CLIs (tools/caft_cli,
/// tools/campaign_cli): flags are --name value pairs, bare flags
/// (--gantt) map to "true", anything not starting with -- is positional.
///
/// Numeric accessors parse *strictly*: a malformed value ("12x", "", a bare
/// flag where a number is required, a negative count) throws CheckError
/// with the flag name and offending text instead of silently truncating or
/// falling back to the default — a typo'd `--replays 10O0` must fail loudly,
/// not run a 10-replay campaign.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <fstream>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/check.hpp"

namespace caft {

class CliArgs {
 public:
  /// Parses argv[first..argc); `first` skips the program name and any
  /// subcommand the caller consumed.
  CliArgs(int argc, char** argv, int first = 1) {
    for (int i = first; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) {
        positional_.push_back(std::move(key));
        continue;
      }
      key.erase(0, 2);
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        values_[key] = argv[++i];
      } else {
        values_[key] = "true";
      }
    }
  }

  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback = "") const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  [[nodiscard]] bool has(const std::string& key) const {
    return values_.count(key) != 0;
  }
  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback) const {
    const auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    std::size_t used = 0;
    double value = 0.0;
    try {
      value = std::stod(it->second, &used);
    } catch (const std::exception&) {
      used = 0;
    }
    if (used == 0 || used != it->second.size())
      throw CheckError("invalid number for --" + key + ": '" + it->second +
                       "'");
    return value;
  }
  [[nodiscard]] std::size_t get_size(const std::string& key,
                                     std::size_t fallback) const {
    const auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    const std::string& text = it->second;
    std::size_t used = 0;
    unsigned long long value = 0;
    try {
      // stoull accepts a leading '-' (wrapping around); reject it up front
      // so "--replays -5" errors instead of requesting ~2^64 replays.
      if (text.find_first_not_of("0123456789") == std::string::npos &&
          !text.empty())
        value = std::stoull(text, &used);
    } catch (const std::exception&) {
      used = 0;
    }
    if (used == 0 || used != text.size())
      throw CheckError("invalid count for --" + key + ": '" + text + "'");
    return static_cast<std::size_t>(value);
  }
  /// The value of `key` constrained to one of `choices`; throws CheckError
  /// naming the valid set otherwise.
  [[nodiscard]] std::string get_choice(
      const std::string& key, const std::string& fallback,
      const std::vector<std::string>& choices) const {
    const std::string value = get(key, fallback);
    for (const std::string& choice : choices)
      if (value == choice) return value;
    std::string valid;
    for (const std::string& choice : choices) {
      if (!valid.empty()) valid += "|";
      valid += choice;
    }
    throw CheckError("invalid value for --" + key + ": '" + value +
                     "' (expected " + valid + ")");
  }
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

  /// Validates up front that `path` (the value of --`flag`) can be opened
  /// for writing, so a run fails before hours of work rather than when the
  /// output file finally opens. Probes with an append-mode open — an
  /// existing file is left byte-identical (no truncation) and a created
  /// empty file is what the real writer would produce anyway. Throws
  /// CheckError naming the flag on failure.
  static void check_writable_path(const std::string& flag,
                                  const std::string& path) {
    CAFT_CHECK_MSG(!path.empty() && path != "true",
                   "--" + flag + " needs a file path");
    std::ofstream probe(path, std::ios::app);
    CAFT_CHECK_MSG(probe.good(),
                   "--" + flag + ": cannot write '" + path + "'");
  }

  /// Validates a TCP port value (the value of --`flag`): strictly decimal
  /// digits, in [0, 65535]. 0 is allowed — it means "pick an ephemeral
  /// port" to bind(), which is exactly what test harnesses pass. Returns
  /// the parsed port; throws CheckError naming the flag otherwise (the
  /// get_size rules: "80x", "", "-1" and bare flags all throw).
  static std::uint16_t check_port(const std::string& flag,
                                  const std::string& text) {
    CAFT_CHECK_MSG(
        !text.empty() && text != "true" &&
            text.find_first_not_of("0123456789") == std::string::npos,
        "--" + flag + ": invalid port '" + text + "' (expected 0-65535)");
    // Digits only, so stoull cannot throw invalid_argument; cap the length
    // before parsing so "999999999999999999999" cannot overflow either.
    CAFT_CHECK_MSG(text.size() <= 5 && std::stoull(text) <= 65535,
                   "--" + flag + ": port '" + text + "' is out of range "
                   "(expected 0-65535)");
    return static_cast<std::uint16_t>(std::stoull(text));
  }

  /// Validates a listen address (the value of --`flag`): a strict IPv4
  /// dotted quad — four decimal octets in [0, 255], no empty components, no
  /// stray characters, no leading '+'/'-'. Hostnames are deliberately
  /// rejected: a listen address names an interface, and resolving names
  /// would drag DNS (and its nondeterminism) into server startup. Throws
  /// CheckError suggesting 127.0.0.1 / 0.0.0.0; returns the address.
  static std::string check_listen_address(const std::string& flag,
                                          const std::string& text) {
    const auto fail = [&] {
      throw CheckError("--" + flag + ": invalid listen address '" + text +
                       "' (expected an IPv4 dotted quad, e.g. 127.0.0.1 for "
                       "local-only or 0.0.0.0 for all interfaces)");
    };
    std::size_t octets = 0;
    std::size_t pos = 0;
    while (pos <= text.size()) {
      const std::size_t dot = std::min(text.find('.', pos), text.size());
      const std::string part = text.substr(pos, dot - pos);
      if (part.empty() || part.size() > 3 ||
          part.find_first_not_of("0123456789") != std::string::npos ||
          std::stoul(part) > 255)
        fail();
      ++octets;
      pos = dot + 1;
    }
    if (octets != 4) fail();
    return text;
  }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace caft
