#include "common/build_info.hpp"

#if defined(__has_include)
#if __has_include("caft_build_info.h")
#include "caft_build_info.h"
#endif
#endif

#ifndef CAFT_BUILD_GIT_SHA
#define CAFT_BUILD_GIT_SHA "unknown"
#endif
#ifndef CAFT_BUILD_COMPILER
#define CAFT_BUILD_COMPILER "unknown"
#endif
#ifndef CAFT_BUILD_TYPE
#define CAFT_BUILD_TYPE "unknown"
#endif

namespace caft {

const BuildInfo& build_info() {
  static const BuildInfo info{CAFT_BUILD_GIT_SHA, CAFT_BUILD_COMPILER,
                              CAFT_BUILD_TYPE};
  return info;
}

std::string version_line() {
  const BuildInfo& info = build_info();
  return "caft " + info.git_sha + " (" + info.compiler + ", " +
         info.build_type + ")";
}

}  // namespace caft
