/// \file subprocess.hpp
/// Minimal blocking subprocess runner: spawn a child process, feed it a
/// byte string on stdin, capture stdout and stderr, and report how it
/// exited. This is the process-spawning half of the subprocess campaign
/// backend (api/session.hpp): the coordinator pipes one serialized work
/// order into each worker and reads one partial result back.
///
/// POSIX-only (fork/exec/poll); the one CheckError path is a platform
/// without it. The runner is thread-compatible — the campaign coordinator
/// spawns from several dispatcher threads at once — and never throws on
/// child failure: a crashed, killed or garbage-emitting child is an
/// *expected* outcome the caller retries, so it is reported in the result,
/// not as an exception.
#pragma once

#include <filesystem>
#include <functional>
#include <string>
#include <vector>

namespace caft {

/// RAII scratch directory (mkdtemp under the system temp dir) — used for
/// the coordinator → worker instance handoff and by tests for wrapper
/// scripts. Throws CheckError when the directory cannot be created (or on
/// a platform without mkdtemp); removal at destruction is best-effort.
class ScratchDir {
 public:
  /// `prefix` seeds the directory name: <tmp>/<prefix>-XXXXXX.
  explicit ScratchDir(const std::string& prefix);
  ~ScratchDir();
  ScratchDir(const ScratchDir&) = delete;
  ScratchDir& operator=(const ScratchDir&) = delete;

  [[nodiscard]] const std::filesystem::path& path() const { return path_; }
  /// Convenience: absolute path of `name` inside the directory.
  [[nodiscard]] std::string file(const std::string& name) const {
    return (path_ / name).string();
  }

 private:
  std::filesystem::path path_;
};

/// Everything one finished child process reports.
struct SubprocessResult {
  /// True when the child was spawned and reaped at all (false = fork or
  /// pipe creation failed; `error` says why).
  bool spawned = false;
  /// True when the child exited normally (as opposed to dying on a signal).
  bool exited = false;
  int exit_code = -1;    ///< exit status when `exited`
  int term_signal = 0;   ///< terminating signal when !exited (e.g. SIGKILL)
  std::string out;       ///< captured stdout
  std::string err;       ///< captured stderr
  std::string error;     ///< spawn-infrastructure error, empty when spawned

  /// The one success predicate callers need: spawned, exited, status 0.
  [[nodiscard]] bool ok() const { return spawned && exited && exit_code == 0; }
  /// One-line description of how the child failed, for retry logs.
  [[nodiscard]] std::string describe_failure() const;
};

/// Incremental stdout sink: called from the poll loop with each chunk of
/// child stdout as it arrives (any chunking, including mid-line splits).
/// When set, `SubprocessResult::out` stays empty — the child's output is
/// never accumulated in one string. The sink MUST NOT throw: it runs while
/// the child is alive, and unwinding out of the poll loop would leak the
/// process. Parsers latch errors instead (api/campaign_wire's
/// CampaignPartialReader is the intended consumer).
using StdoutSink = std::function<void(const char* data, std::size_t size)>;

/// Runs `argv` (argv[0] is the program, resolved via PATH like execvp),
/// writes `input` to its stdin, and blocks until it exits. Stdout/stderr
/// are captured concurrently with the stdin feed (poll loop), so neither
/// side can deadlock on a full pipe regardless of sizes. With `on_stdout`,
/// stdout chunks stream to the sink instead of `result.out`.
[[nodiscard]] SubprocessResult run_subprocess(
    const std::vector<std::string>& argv, const std::string& input,
    const StdoutSink& on_stdout = nullptr);

}  // namespace caft
