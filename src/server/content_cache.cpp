#include "server/content_cache.hpp"

#include <cstdio>
#include <sstream>
#include <utility>

#include "api/campaign_wire.hpp"
#include "common/hash.hpp"

namespace ftsched {
namespace server {

namespace {

std::string hex64(std::uint64_t value) {
  char buffer[17];
  std::snprintf(buffer, sizeof buffer, "%016llx",
                static_cast<unsigned long long>(value));
  return buffer;
}

}  // namespace

ContentCache::ContentCache(std::size_t capacity)
    : capacity_(capacity),
      hits_(obs::Registry::global().counter("server.cache.hit")),
      misses_(obs::Registry::global().counter("server.cache.miss")),
      evictions_(obs::Registry::global().counter("server.cache.evict")) {}

std::size_t ContentCache::size() const {
  const std::lock_guard<std::mutex> guard(lock_);
  return instances_.size() + schedules_.size() + templates_.size();
}

void ContentCache::evict_to_capacity() {
  while (instances_.size() + schedules_.size() + templates_.size() >
         capacity_) {
    // O(entries) scan for the oldest tick — fine at cache-capacity scale,
    // and it keeps every structure a plain ordered map (no intrusive LRU
    // list to get wrong under the single lock).
    std::uint64_t oldest = ~std::uint64_t{0};
    int family = -1;
    std::map<std::string, Slot<const Instance>>::iterator it_i;
    std::map<std::string, Slot<const CachedSchedule>>::iterator it_s;
    std::map<std::string, Slot<const CachedTemplate>>::iterator it_t;
    for (auto it = instances_.begin(); it != instances_.end(); ++it)
      if (it->second.last_used < oldest) {
        oldest = it->second.last_used;
        family = 0;
        it_i = it;
      }
    for (auto it = schedules_.begin(); it != schedules_.end(); ++it)
      if (it->second.last_used < oldest) {
        oldest = it->second.last_used;
        family = 1;
        it_s = it;
      }
    for (auto it = templates_.begin(); it != templates_.end(); ++it)
      if (it->second.last_used < oldest) {
        oldest = it->second.last_used;
        family = 2;
        it_t = it;
      }
    if (family == 0) instances_.erase(it_i);
    if (family == 1) schedules_.erase(it_s);
    if (family == 2) templates_.erase(it_t);
    evictions_.add(1);
  }
}

std::shared_ptr<const Instance> ContentCache::instance(
    const std::string& bytes, std::uint64_t* hash) {
  const std::uint64_t key_hash = caft::fnv1a64(bytes);
  if (hash != nullptr) *hash = key_hash;
  const std::string key = "i/" + hex64(key_hash);

  const std::lock_guard<std::mutex> guard(lock_);
  ++tick_;
  const auto it = instances_.find(key);
  if (it != instances_.end()) {
    it->second.last_used = tick_;
    hits_.add(1);
    return it->second.value;
  }
  misses_.add(1);
  std::istringstream in(bytes);
  auto loaded = std::make_shared<const Instance>(Instance::load(in));
  if (capacity_ == 0) return loaded;
  instances_[key] = {loaded, tick_};
  evict_to_capacity();
  return loaded;
}

std::shared_ptr<const ContentCache::CachedSchedule> ContentCache::schedule(
    const std::shared_ptr<const Instance>& instance,
    std::uint64_t instance_hash, const std::string& algorithm,
    const ScheduleRequest& request) {
  // The request fingerprint is the shared wire encoding — one line that
  // covers every field that can change a schedule, maintained in exactly
  // one place (api/campaign_wire.cpp).
  std::ostringstream fingerprint;
  wire::write_request_line(fingerprint, request);
  const std::string key =
      "s/" + hex64(instance_hash) + "/" + algorithm + "/" + fingerprint.str();

  const std::lock_guard<std::mutex> guard(lock_);
  ++tick_;
  const auto it = schedules_.find(key);
  if (it != schedules_.end()) {
    it->second.last_used = tick_;
    hits_.add(1);
    return it->second.value;
  }
  misses_.add(1);
  const auto scheduler = SchedulerRegistry::global().make(algorithm);
  auto cached = std::make_shared<const CachedSchedule>(
      CachedSchedule{instance, scheduler->schedule(*instance, request), key});
  if (capacity_ == 0) return cached;
  schedules_[key] = {cached, tick_};
  evict_to_capacity();
  return cached;
}

std::shared_ptr<const ContentCache::CachedTemplate>
ContentCache::replay_template(
    const std::shared_ptr<const CachedSchedule>& schedule,
    double theta_bucket_width, bool exact) {
  // The schedule key already pins instance content, algorithm and request;
  // the θ-width and exact flag are the only engine options that change
  // replay results, so together they address the template fully.
  const std::string key = "t/" + schedule->key + "/" +
                          wire::format_double(theta_bucket_width) + "/" +
                          (exact ? "1" : "0");

  const std::lock_guard<std::mutex> guard(lock_);
  ++tick_;
  const auto it = templates_.find(key);
  if (it != templates_.end()) {
    it->second.last_used = tick_;
    hits_.add(1);
    return it->second.value;
  }
  misses_.add(1);
  caft::ReplayEngineOptions options;
  options.theta_bucket_width = theta_bucket_width;
  options.exact = exact;
  auto engine = std::make_unique<const caft::ReplayEngine>(
      schedule->result.schedule, schedule->instance->costs(), options);
  auto cached = std::make_shared<const CachedTemplate>(
      CachedTemplate{schedule, std::move(engine)});
  if (capacity_ == 0) return cached;
  templates_[key] = {cached, tick_};
  evict_to_capacity();
  return cached;
}

}  // namespace server
}  // namespace ftsched
