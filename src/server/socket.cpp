#include "server/socket.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/check.hpp"

namespace ftsched {
namespace server {

SocketBuf::SocketBuf(int fd) : fd_(fd) {
  setg(in_, in_, in_);
  setp(out_, out_ + kBufSize);
}

SocketBuf::~SocketBuf() {
  (void)flush_output();  // best effort; the peer may already be gone
  if (fd_ >= 0) ::close(fd_);
}

SocketBuf::int_type SocketBuf::underflow() {
  if (gptr() < egptr()) return traits_type::to_int_type(*gptr());
  ssize_t got;
  do {
    got = ::recv(fd_, in_, kBufSize, 0);
  } while (got < 0 && errno == EINTR);
  if (got <= 0) return traits_type::eof();
  setg(in_, in_, in_ + got);
  return traits_type::to_int_type(*gptr());
}

bool SocketBuf::flush_output() {
  const char* data = pbase();
  std::size_t left = static_cast<std::size_t>(pptr() - pbase());
  while (left > 0) {
    ssize_t sent;
    do {
      sent = ::send(fd_, data, left, MSG_NOSIGNAL);
    } while (sent < 0 && errno == EINTR);
    if (sent <= 0) return false;
    data += sent;
    left -= static_cast<std::size_t>(sent);
  }
  setp(out_, out_ + kBufSize);
  return true;
}

SocketBuf::int_type SocketBuf::overflow(int_type ch) {
  if (!flush_output()) return traits_type::eof();
  if (!traits_type::eq_int_type(ch, traits_type::eof())) {
    *pptr() = traits_type::to_char_type(ch);
    pbump(1);
  }
  return traits_type::not_eof(ch);
}

int SocketBuf::sync() { return flush_output() ? 0 : -1; }

namespace {

sockaddr_in make_address(const std::string& address, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  CAFT_CHECK_MSG(::inet_pton(AF_INET, address.c_str(), &addr.sin_addr) == 1,
                 "not an IPv4 dotted quad: '" + address + "'");
  return addr;
}

}  // namespace

ListenSocket::ListenSocket(const std::string& address, std::uint16_t port)
    : fd_(-1) {
  const sockaddr_in addr = make_address(address, port);
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  CAFT_CHECK_MSG(fd >= 0, "cannot create a TCP socket: " +
                              std::string(std::strerror(errno)));
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(fd, 16) != 0) {
    const std::string reason = std::strerror(errno);
    ::close(fd);
    throw caft::CheckError("cannot listen on " + address + ":" +
                           std::to_string(port) + ": " + reason);
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof bound;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) !=
      0) {
    const std::string reason = std::strerror(errno);
    ::close(fd);
    throw caft::CheckError("getsockname failed on " + address + ": " + reason);
  }
  port_ = ntohs(bound.sin_port);
  fd_.store(fd);
}

ListenSocket::~ListenSocket() { close(); }

void ListenSocket::close() {
  const int fd = fd_.exchange(-1);
  if (fd >= 0) ::close(fd);
}

std::unique_ptr<SocketStream> ListenSocket::accept_connection(
    const std::atomic<bool>& stop) {
  while (!stop.load(std::memory_order_acquire)) {
    const int fd = fd_.load(std::memory_order_acquire);
    if (fd < 0) return nullptr;
    pollfd waiter{fd, POLLIN, 0};
    const int ready = ::poll(&waiter, 1, 200);
    if (ready < 0 && errno != EINTR) return nullptr;
    if (ready <= 0) continue;
    const int client = ::accept(fd, nullptr, nullptr);
    if (client < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return nullptr;  // listener closed under us, or a hard error
    }
    return std::make_unique<SocketStream>(client);
  }
  return nullptr;
}

std::unique_ptr<SocketStream> connect_to(const std::string& address,
                                         std::uint16_t port) {
  const sockaddr_in addr = make_address(address, port);
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  CAFT_CHECK_MSG(fd >= 0, "cannot create a TCP socket: " +
                              std::string(std::strerror(errno)));
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr);
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    const std::string reason = std::strerror(errno);
    ::close(fd);
    throw caft::CheckError("cannot connect to " + address + ":" +
                           std::to_string(port) + ": " + reason);
  }
  return std::make_unique<SocketStream>(fd);
}

}  // namespace server
}  // namespace ftsched
