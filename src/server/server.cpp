#include "server/server.hpp"

#include <exception>
#include <utility>

#include "common/check.hpp"

namespace ftsched {
namespace server {

// --- Admission

Admission::Admission(std::size_t max_inflight, std::size_t queue_limit)
    : max_inflight_(max_inflight),
      queue_limit_(queue_limit),
      accepted_(obs::Registry::global().counter("server.requests.accepted")),
      rejected_(obs::Registry::global().counter("server.requests.rejected")),
      queue_depth_(obs::Registry::global().gauge("server.queue.depth")) {}

Admission::Ticket Admission::acquire() {
  std::unique_lock<std::mutex> guard(lock_);
  if (max_inflight_ == 0 || (inflight_ >= max_inflight_ &&
                             waiting_ >= queue_limit_)) {
    rejected_.add(1);
    return Ticket{false, inflight_, waiting_};
  }
  ++waiting_;
  queue_depth_.set(static_cast<double>(waiting_));
  free_slot_.wait(guard, [&] { return inflight_ < max_inflight_; });
  --waiting_;
  queue_depth_.set(static_cast<double>(waiting_));
  ++inflight_;
  accepted_.add(1);
  return Ticket{true, inflight_, waiting_};
}

void Admission::release() {
  {
    const std::lock_guard<std::mutex> guard(lock_);
    --inflight_;
  }
  free_slot_.notify_one();
}

// --- CampaignServer

CampaignServer::CampaignServer(ServerOptions options)
    : options_(std::move(options)),
      cache_(options_.cache_capacity),
      admission_(options_.max_inflight, options_.queue_limit) {
  // The byte-identity guarantee needs in-process determinism (wave-boundary
  // early stopping) and a place to plug the cached replay template; the
  // subprocess backend offers neither. A deployment that wants process
  // fan-out runs workers behind the server, not inside it.
  CAFT_CHECK_MSG(
      options_.session.exec.mode == ExecutionPolicy::Mode::kInProcess,
      "the campaign server requires an in-process Session execution policy");
  // A session-level progress callback would fire for every request on a
  // stream it knows nothing about; per-request callbacks are installed in
  // handle() instead.
  CAFT_CHECK_MSG(!options_.session.on_progress,
                 "set per-request progress via the wire protocol, not "
                 "SessionOptions::on_progress");
}

CampaignServer::~CampaignServer() { stop(); }

void CampaignServer::serve(std::istream& in, std::ostream& out) {
  try {
    const CampaignRequest request = read_campaign_request(in);
    const Admission::Ticket ticket = admission_.acquire();
    if (!ticket.admitted) {
      write_campaign_busy(out,
                          BusyInfo{ticket.inflight, ticket.queued,
                                   admission_.max_inflight(),
                                   admission_.queue_limit()});
      out.flush();
      return;
    }
    try {
      handle(request, out);
    } catch (...) {
      admission_.release();
      throw;
    }
    admission_.release();
  } catch (const std::exception& error) {
    write_campaign_error(out, error.what());
    out.flush();
  }
}

void CampaignServer::handle(const CampaignRequest& request,
                            std::ostream& out) {
  const CampaignSpec& spec = request.spec;
  std::uint64_t content_hash = 0;
  const std::shared_ptr<const Instance> instance =
      cache_.instance(request.instance_bytes, &content_hash);

  CampaignReport report;
  report.runs.reserve(spec.algorithms.size());
  for (const std::string& algorithm : spec.algorithms) {
    const auto cached =
        cache_.schedule(instance, content_hash, algorithm, spec.request);
    ScheduleResult result = cached->result;  // the run carries its own copy

    // The same width derivation campaign_options uses — the template cache
    // key must match what the campaign will actually replay with.
    const double width =
        spec.exact ? 0.0
                   : spec.theta_bucket_width(result.schedule.horizon());
    std::shared_ptr<const ContentCache::CachedTemplate> replay_template;
    if (options_.session.engine == caft::CampaignEngine::kIncremental)
      replay_template = cache_.replay_template(cached, width, spec.exact);

    SessionOptions session_options = options_.session;
    if (request.progress) {
      session_options.on_progress =
          [&out, &algorithm](const caft::CampaignProgress& progress) {
            write_progress_line(out, ProgressLine{algorithm,
                                                  progress.replays_done,
                                                  progress.replays_total,
                                                  progress.successes,
                                                  progress.ci_width});
            out.flush();
          };
    }
    const Session session(session_options);
    report.runs.push_back(session.evaluate_schedule(
        *instance, std::move(result), spec,
        replay_template ? replay_template->engine.get() : nullptr));
  }
  write_campaign_report(out, report);
  out.flush();
}

void CampaignServer::start() {
  CAFT_CHECK_MSG(listener_ == nullptr, "the campaign server already runs");
  stopping_.store(false, std::memory_order_release);
  listener_ =
      std::make_unique<ListenSocket>(options_.listen_address, options_.port);
  accept_thread_ = std::thread([this] { accept_loop(); });
}

std::uint16_t CampaignServer::port() const {
  CAFT_CHECK_MSG(listener_ != nullptr, "the campaign server is not running");
  return listener_->port();
}

void CampaignServer::accept_loop() {
  while (true) {
    std::unique_ptr<SocketStream> stream =
        listener_->accept_connection(stopping_);
    if (stream == nullptr) return;
    {
      const std::lock_guard<std::mutex> guard(connections_lock_);
      ++open_connections_;
    }
    std::thread([this, connection = std::move(stream)]() mutable {
      serve(*connection, *connection);
      connection.reset();  // flush + close before the count drops
      {
        const std::lock_guard<std::mutex> guard(connections_lock_);
        --open_connections_;
      }
      connections_done_.notify_all();
    }).detach();
  }
}

void CampaignServer::stop() {
  if (listener_ == nullptr) return;
  stopping_.store(true, std::memory_order_release);
  listener_->close();
  if (accept_thread_.joinable()) accept_thread_.join();
  std::unique_lock<std::mutex> guard(connections_lock_);
  connections_done_.wait(guard, [&] { return open_connections_ == 0; });
  guard.unlock();
  listener_.reset();
}

}  // namespace server
}  // namespace ftsched
