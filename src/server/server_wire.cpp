#include "server/server_wire.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <utility>

#include "api/campaign_wire.hpp"
#include "common/check.hpp"

namespace ftsched {
namespace server {

using namespace wire;

void write_campaign_request(std::ostream& os,
                            const CampaignRequest& request) {
  const CampaignSpec& spec = request.spec;
  os << "caft-campaign-request v1\n";
  os << "algorithms " << spec.algorithms.size();
  for (const std::string& algorithm : spec.algorithms)
    os << " " << algorithm;
  os << "\n";
  os << "replays " << spec.replays << "\n";
  os << "seed " << spec.seed << "\n";
  os << "quantiles " << spec.quantiles.size();
  for (const double q : spec.quantiles) os << " " << format_double(q);
  os << "\n";
  os << "theta-buckets " << spec.theta_buckets << "\n";
  os << "exact " << (spec.exact ? 1 : 0) << "\n";
  os << "target-ci-width " << format_double(spec.target_ci_width) << "\n";
  write_sampler_line(os, spec.sampler);
  write_request_line(os, spec.request);
  os << "progress " << (request.progress ? 1 : 0) << "\n";
  os << "instance-bytes " << request.instance_bytes.size() << "\n";
  os.write(request.instance_bytes.data(),
           static_cast<std::streamsize>(request.instance_bytes.size()));
  os << "end\n";
}

CampaignRequest read_campaign_request(std::istream& is) {
  expect_magic(is, "caft-campaign-request");
  CampaignRequest request;
  request.spec.algorithms.clear();
  bool saw_end = false;
  bool saw_algorithms = false;
  bool saw_instance = false;
  std::string line;
  while (!saw_end && std::getline(is, line)) {
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::string key;
    fields >> key;
    if (key == "end") {
      saw_end = true;
    } else if (key == "algorithms") {
      const std::size_t n = parse_size(
          next_token(fields, "algorithm count"), "algorithm count");
      request.spec.algorithms.clear();
      request.spec.algorithms.reserve(n);
      for (std::size_t i = 0; i < n; ++i)
        request.spec.algorithms.push_back(
            next_token(fields, "algorithm name"));
      saw_algorithms = true;
    } else if (key == "replays") {
      request.spec.replays =
          parse_size(next_token(fields, "replays"), "replays");
    } else if (key == "seed") {
      const std::string token = next_token(fields, "seed");
      CAFT_CHECK_MSG(!token.empty() &&
                         token.find_first_not_of("0123456789") ==
                             std::string::npos,
                     "campaign wire: malformed seed '" + token + "'");
      request.spec.seed = std::stoull(token);
    } else if (key == "quantiles") {
      const std::size_t n =
          parse_size(next_token(fields, "quantile count"), "quantile count");
      request.spec.quantiles.clear();
      request.spec.quantiles.reserve(n);
      for (std::size_t i = 0; i < n; ++i)
        request.spec.quantiles.push_back(
            parse_double(next_token(fields, "quantile"), "quantile"));
    } else if (key == "theta-buckets") {
      request.spec.theta_buckets =
          parse_size(next_token(fields, "theta-buckets"), "theta-buckets");
    } else if (key == "exact") {
      request.spec.exact =
          parse_bool(next_token(fields, "exact"), "exact");
    } else if (key == "target-ci-width") {
      request.spec.target_ci_width = parse_double(
          next_token(fields, "target-ci-width"), "target-ci-width");
    } else if (key == "sampler") {
      read_sampler_line(fields, request.spec.sampler);
    } else if (key == "request") {
      read_request_line(fields, request.spec.request);
    } else if (key == "progress") {
      request.progress =
          parse_bool(next_token(fields, "progress"), "progress");
    } else if (key == "instance-bytes") {
      const std::size_t n = parse_size(
          next_token(fields, "instance byte count"), "instance byte count");
      CAFT_CHECK_MSG(n > 0, "campaign wire: request has an empty instance");
      request.instance_bytes.resize(n);
      is.read(request.instance_bytes.data(),
              static_cast<std::streamsize>(n));
      CAFT_CHECK_MSG(static_cast<std::size_t>(is.gcount()) == n,
                     "campaign wire: truncated instance payload (got " +
                         std::to_string(is.gcount()) + " of " +
                         std::to_string(n) + " bytes)");
      saw_instance = true;
    } else {
      throw caft::CheckError("campaign wire: unknown request key '" + key +
                             "'");
    }
  }
  CAFT_CHECK_MSG(saw_end, "campaign wire: truncated request (no 'end')");
  CAFT_CHECK_MSG(saw_algorithms && !request.spec.algorithms.empty(),
                 "campaign wire: request names no algorithms");
  CAFT_CHECK_MSG(saw_instance,
                 "campaign wire: request carries no instance bytes");
  return request;
}

std::vector<std::pair<std::string, caft::CampaignSummary>>
ReportDocument::summary_rows() const {
  std::vector<std::pair<std::string, caft::CampaignSummary>> rows;
  rows.reserve(runs.size());
  for (const ReportRun& run : runs)
    rows.emplace_back(display_name(run.algorithm), run.summary);
  return rows;
}

namespace {

void write_moments_line(std::ostream& os, const char* label,
                        const caft::StreamingMoments& moments) {
  os << label << " " << moments.count() << " "
     << format_double(moments.count() == 0 ? 0.0 : moments.mean()) << " "
     << format_double(moments.m2()) << " " << format_double(moments.min())
     << " " << format_double(moments.max()) << "\n";
}

caft::StreamingMoments read_moments_line(std::istringstream& fields,
                                         const char* what) {
  const std::size_t count = parse_size(next_token(fields, what), what);
  const double mean = parse_double(next_token(fields, what), what);
  const double m2 = parse_double(next_token(fields, what), what);
  const double min = parse_double(next_token(fields, what), what);
  const double max = parse_double(next_token(fields, what), what);
  return caft::StreamingMoments::restore(count, mean, m2, min, max);
}

}  // namespace

void write_campaign_report(std::ostream& os, const CampaignReport& report) {
  os << "caft-campaign-report v1\n";
  os << "runs " << report.runs.size() << "\n";
  for (const CampaignRun& run : report.runs) {
    const caft::CampaignSummary& s = run.summary;
    os << "run " << run.algorithm << "\n";
    os << "sched " << run.result.eps << " "
       << format_double(run.result.makespan) << " "
       << format_double(run.result.upper_bound) << " "
       << run.result.messages << " "
       << format_double(run.result.message_volume) << "\n";
    os << "theta-width " << format_double(run.theta_bucket_width) << "\n";
    os << "summary-sampler " << s.sampler << "\n";
    os << "summary-counts " << s.replays << " " << s.successes << " "
       << s.replays_within_eps << " " << s.successes_within_eps << " "
       << s.max_failed << " " << s.order_relaxations << " "
       << s.order_deadlocks << "\n";
    os << "summary-ci " << format_double(s.success_ci.low) << " "
       << format_double(s.success_ci.high) << "\n";
    write_moments_line(os, "latency", s.latency);
    write_moments_line(os, "delivered", s.delivered_messages);
    for (const caft::QuantileEstimate& quantile : s.latency_quantiles)
      os << "quantile " << format_double(quantile.q) << " "
         << format_double(quantile.value) << "\n";
    os << "end-run\n";
  }
  os << "end\n";
}

namespace {

/// Parses the `run`..`end-run` group whose `run` line is already consumed.
ReportRun read_report_run(std::istream& is, std::string algorithm) {
  ReportRun run;
  run.algorithm = std::move(algorithm);
  bool saw_end_run = false;
  std::string line;
  while (!saw_end_run && std::getline(is, line)) {
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::string key;
    fields >> key;
    if (key == "end-run") {
      saw_end_run = true;
    } else if (key == "sched") {
      run.eps = parse_size(next_token(fields, "sched eps"), "sched eps");
      run.makespan =
          parse_double(next_token(fields, "sched makespan"), "makespan");
      run.upper_bound = parse_double(next_token(fields, "sched upper-bound"),
                                     "upper-bound");
      run.messages =
          parse_size(next_token(fields, "sched messages"), "messages");
      run.message_volume = parse_double(
          next_token(fields, "sched message-volume"), "message-volume");
    } else if (key == "theta-width") {
      run.theta_bucket_width =
          parse_double(next_token(fields, "theta-width"), "theta-width");
    } else if (key == "summary-sampler") {
      std::string rest;
      std::getline(fields, rest);
      const std::size_t start = rest.find_first_not_of(' ');
      CAFT_CHECK_MSG(start != std::string::npos,
                     "campaign wire: empty summary sampler name");
      run.summary.sampler = rest.substr(start);
    } else if (key == "summary-counts") {
      caft::CampaignSummary& s = run.summary;
      s.replays = parse_size(next_token(fields, "summary replays"),
                             "summary replays");
      s.successes = parse_size(next_token(fields, "summary successes"),
                               "summary successes");
      s.replays_within_eps = parse_size(
          next_token(fields, "summary within-replays"), "within-replays");
      s.successes_within_eps = parse_size(
          next_token(fields, "summary within-successes"), "within-successes");
      s.max_failed =
          parse_size(next_token(fields, "summary max-failed"), "max-failed");
      s.order_relaxations = parse_size(
          next_token(fields, "summary relaxations"), "relaxations");
      s.order_deadlocks =
          parse_size(next_token(fields, "summary deadlocks"), "deadlocks");
    } else if (key == "summary-ci") {
      run.summary.success_ci.low =
          parse_double(next_token(fields, "ci low"), "ci low");
      run.summary.success_ci.high =
          parse_double(next_token(fields, "ci high"), "ci high");
    } else if (key == "latency") {
      run.summary.latency = read_moments_line(fields, "latency moments");
    } else if (key == "delivered") {
      run.summary.delivered_messages =
          read_moments_line(fields, "delivered moments");
    } else if (key == "quantile") {
      caft::QuantileEstimate quantile;
      quantile.q = parse_double(next_token(fields, "quantile q"), "q");
      quantile.value =
          parse_double(next_token(fields, "quantile value"), "value");
      run.summary.latency_quantiles.push_back(quantile);
    } else {
      throw caft::CheckError("campaign wire: unknown report key '" + key +
                             "'");
    }
  }
  CAFT_CHECK_MSG(saw_end_run,
                 "campaign wire: truncated report run (no 'end-run')");
  return run;
}

/// Shared by read_campaign_report (after expect_magic) and
/// read_server_response (after dispatching the already-read magic line).
ReportDocument read_report_body(std::istream& is) {
  ReportDocument document;
  std::size_t declared_runs = 0;
  bool saw_runs = false;
  bool saw_end = false;
  std::string line;
  while (!saw_end && std::getline(is, line)) {
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::string key;
    fields >> key;
    if (key == "end") {
      saw_end = true;
    } else if (key == "runs") {
      declared_runs =
          parse_size(next_token(fields, "run count"), "run count");
      saw_runs = true;
    } else if (key == "run") {
      document.runs.push_back(
          read_report_run(is, next_token(fields, "run algorithm")));
    } else {
      throw caft::CheckError("campaign wire: unknown report key '" + key +
                             "'");
    }
  }
  CAFT_CHECK_MSG(saw_end, "campaign wire: truncated report (no 'end')");
  CAFT_CHECK_MSG(saw_runs && declared_runs == document.runs.size(),
                 "campaign wire: report declares " +
                     std::to_string(declared_runs) + " runs but carries " +
                     std::to_string(document.runs.size()));
  return document;
}

}  // namespace

ReportDocument read_campaign_report(std::istream& is) {
  expect_magic(is, "caft-campaign-report");
  return read_report_body(is);
}

void write_campaign_busy(std::ostream& os, const BusyInfo& busy) {
  os << "caft-campaign-busy v1\n";
  os << "inflight " << busy.inflight << "\n";
  os << "queued " << busy.queued << "\n";
  os << "max-inflight " << busy.max_inflight << "\n";
  os << "queue-limit " << busy.queue_limit << "\n";
  os << "end\n";
}

void write_campaign_error(std::ostream& os, const std::string& message) {
  // The message rides one keyed line; strip embedded newlines so a
  // multi-line exception cannot smuggle bogus document lines.
  std::string flat = message;
  for (char& c : flat)
    if (c == '\n' || c == '\r') c = ' ';
  os << "caft-campaign-error v1\n";
  os << "error " << flat << "\n";
  os << "end\n";
}

void write_progress_line(std::ostream& os, const ProgressLine& line) {
  os << "progress " << line.algorithm << " " << line.done << " "
     << line.total << " " << line.successes << " "
     << format_double(line.ci_width) << "\n";
}

namespace {

BusyInfo read_busy_body(std::istream& is) {
  BusyInfo busy;
  bool saw_end = false;
  std::string line;
  while (!saw_end && std::getline(is, line)) {
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::string key;
    fields >> key;
    if (key == "end") {
      saw_end = true;
    } else if (key == "inflight") {
      busy.inflight = parse_size(next_token(fields, "inflight"), "inflight");
    } else if (key == "queued") {
      busy.queued = parse_size(next_token(fields, "queued"), "queued");
    } else if (key == "max-inflight") {
      busy.max_inflight =
          parse_size(next_token(fields, "max-inflight"), "max-inflight");
    } else if (key == "queue-limit") {
      busy.queue_limit =
          parse_size(next_token(fields, "queue-limit"), "queue-limit");
    } else {
      throw caft::CheckError("campaign wire: unknown busy key '" + key + "'");
    }
  }
  CAFT_CHECK_MSG(saw_end, "campaign wire: truncated busy document");
  return busy;
}

std::string read_error_body(std::istream& is) {
  std::string message;
  bool saw_end = false;
  bool saw_error = false;
  std::string line;
  while (!saw_end && std::getline(is, line)) {
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::string key;
    fields >> key;
    if (key == "end") {
      saw_end = true;
    } else if (key == "error") {
      std::string rest;
      std::getline(fields, rest);
      const std::size_t start = rest.find_first_not_of(' ');
      message = start == std::string::npos ? "" : rest.substr(start);
      saw_error = true;
    } else {
      throw caft::CheckError("campaign wire: unknown error key '" + key +
                             "'");
    }
  }
  CAFT_CHECK_MSG(saw_end && saw_error,
                 "campaign wire: truncated error document");
  return message;
}

}  // namespace

ServerResponse read_server_response(
    std::istream& is,
    const std::function<void(const ProgressLine&)>& on_progress) {
  ServerResponse response;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    if (line.rfind("progress ", 0) == 0) {
      std::istringstream fields(line);
      std::string key;
      fields >> key;
      ProgressLine progress;
      progress.algorithm = next_token(fields, "progress algorithm");
      progress.done =
          parse_size(next_token(fields, "progress done"), "done");
      progress.total =
          parse_size(next_token(fields, "progress total"), "total");
      progress.successes =
          parse_size(next_token(fields, "progress successes"), "successes");
      progress.ci_width =
          parse_double(next_token(fields, "progress ci-width"), "ci-width");
      if (on_progress) on_progress(progress);
      response.progress.push_back(std::move(progress));
      continue;
    }
    // The first non-progress line opens the document; dispatch on it. The
    // check_magic_line call inside each branch yields the shared
    // version-skew diagnostic for a v2 line of a known magic.
    if (line.rfind("caft-campaign-report", 0) == 0) {
      check_magic_line(line, "caft-campaign-report");
      response.kind = ServerResponse::Kind::kReport;
      response.report = read_report_body(is);
      return response;
    }
    if (line.rfind("caft-campaign-busy", 0) == 0) {
      check_magic_line(line, "caft-campaign-busy");
      response.kind = ServerResponse::Kind::kBusy;
      response.busy = read_busy_body(is);
      return response;
    }
    if (line.rfind("caft-campaign-error", 0) == 0) {
      check_magic_line(line, "caft-campaign-error");
      response.kind = ServerResponse::Kind::kError;
      response.error = read_error_body(is);
      return response;
    }
    throw caft::CheckError("campaign wire: unexpected server line '" + line +
                           "'");
  }
  throw caft::CheckError("campaign wire: empty server response");
}

}  // namespace server
}  // namespace ftsched
