/// \file server_wire.hpp
/// Wire documents of the campaign server (src/server/server.hpp): the
/// request a client sends over one connection and the three answers a
/// server can stream back — progress lines followed by exactly one of a
/// report, a busy rejection, or an error document.
///
/// Same dialect as api/campaign_wire.hpp (the shared `ftsched::wire`
/// helpers): line-oriented keyed documents, `<magic> v1` first lines with
/// the version-skew diagnostic, every double as a C hexfloat literal, and
/// strict readers that throw caft::CheckError instead of guessing.
///
/// Request (`caft-campaign-request v1`):
///   algorithms <k> <name>...
///   replays <n>  /  seed <u64>
///   quantiles <k> <q...>                 # hexfloat
///   theta-buckets <n>  /  exact <0|1>
///   target-ci-width <w>                  # hexfloat, 0 = run all replays
///   sampler ...  /  request ...          # the shared spec-line codecs
///   progress <0|1>                       # stream progress lines?
///   instance-bytes <n>                   # followed by exactly n raw bytes
///   <n bytes of io/instance_io text>     # of the archival instance format
///   end
/// The server content-addresses the campaign by the FNV-1a hash of those
/// instance bytes (common/hash.hpp) — two clients sending equal bytes share
/// every cached artifact.
///
/// Report (`caft-campaign-report v1`) — one `run`..`end-run` group per
/// algorithm, in request order:
///   runs <k>
///   run <algorithm>
///   sched <eps> <makespan> <upper-bound> <messages> <message-volume>
///   theta-width <w>
///   summary-sampler <name...>            # rest of line, spaces and all
///   summary-counts <replays> <successes> <within-replays>
///                  <within-successes> <max-failed> <relaxations> <deadlocks>
///   summary-ci <low> <high>
///   latency <count> <mean> <m2> <min> <max>      # complete Welford state
///   delivered <count> <mean> <m2> <min> <max>
///   quantile <q> <value>                 # one per estimated quantile
///   end-run
///   end
/// Deliberately NO telemetry and NO timings: the report is a pure function
/// of (instance bytes, spec), which is what makes the server's headline
/// guarantee testable — the document must be byte-identical to serializing
/// an in-process Session::evaluate of the same inputs, cache hit or miss.
///
/// Busy (`caft-campaign-busy v1`): the admission controller's rejection —
///   inflight <n>  /  queued <n>  /  max-inflight <n>  /  queue-limit <n>
///   end
///
/// Error (`caft-campaign-error v1`):
///   error <message...>                   # rest of line
///   end
///
/// Progress lines are NOT a document: with `progress 1` the server streams
///   progress <algorithm> <done> <total> <successes> <ci-width>
/// lines *before* the final document, one per folded wave. A reader strips
/// them until the first magic line (read_server_response below).
#pragma once

#include <cstddef>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "api/session.hpp"
#include "campaign/stats.hpp"

namespace ftsched {
namespace server {

/// One client request: a full CampaignSpec plus the instance *bytes* (the
/// server never touches the client's filesystem).
struct CampaignRequest {
  CampaignSpec spec;
  bool progress = false;        ///< stream progress lines before the report
  std::string instance_bytes;   ///< io/instance_io text, hashed for caching
};

void write_campaign_request(std::ostream& os, const CampaignRequest& request);
/// Parses a request; throws caft::CheckError on malformed input (including
/// a missing/short instance payload or an empty algorithm list).
[[nodiscard]] CampaignRequest read_campaign_request(std::istream& is);

/// The read-side shape of one report run. A plain struct (not CampaignRun):
/// ScheduleResult carries a Schedule wired to a live instance, which a
/// client reading a report does not have — it gets the scalar facts the
/// wire carries instead.
struct ReportRun {
  std::string algorithm;
  std::size_t eps = 0;
  double makespan = 0.0;
  double upper_bound = 0.0;
  std::size_t messages = 0;
  double message_volume = 0.0;
  double theta_bucket_width = 0.0;
  caft::CampaignSummary summary;
};

struct ReportDocument {
  std::vector<ReportRun> runs;

  /// (display label, summary) rows for campaign_table — the same shape
  /// CampaignReport::summary_rows() produces, so a client's table/CSV/JSON
  /// output is byte-identical to campaign_cli's.
  [[nodiscard]] std::vector<std::pair<std::string, caft::CampaignSummary>>
  summary_rows() const;
};

void write_campaign_report(std::ostream& os, const CampaignReport& report);
[[nodiscard]] ReportDocument read_campaign_report(std::istream& is);

/// The admission controller's state at rejection time.
struct BusyInfo {
  std::size_t inflight = 0;
  std::size_t queued = 0;
  std::size_t max_inflight = 0;
  std::size_t queue_limit = 0;
};

void write_campaign_busy(std::ostream& os, const BusyInfo& busy);
void write_campaign_error(std::ostream& os, const std::string& message);

/// One streamed progress line (see the file comment).
struct ProgressLine {
  std::string algorithm;
  std::size_t done = 0;
  std::size_t total = 0;
  std::size_t successes = 0;
  double ci_width = 1.0;
};

void write_progress_line(std::ostream& os, const ProgressLine& line);

/// Everything a server can answer with.
struct ServerResponse {
  enum class Kind { kReport, kBusy, kError };
  Kind kind = Kind::kError;
  ReportDocument report;          ///< kind == kReport
  BusyInfo busy;                  ///< kind == kBusy
  std::string error;              ///< kind == kError
  std::vector<ProgressLine> progress;  ///< lines streamed before the doc
};

/// Reads a full server response: progress lines (collected, and fed to
/// `on_progress` as they arrive — how a client shows live progress while
/// the document is still streaming) until the first magic line, then the
/// document that line opens. Throws caft::CheckError on anything
/// malformed — including version skew, with the shared "speaks v1"
/// diagnostic.
[[nodiscard]] ServerResponse read_server_response(
    std::istream& is,
    const std::function<void(const ProgressLine&)>& on_progress = {});

}  // namespace server
}  // namespace ftsched
