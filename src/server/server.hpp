/// \file server.hpp
/// `ftsched::server::CampaignServer` — campaigns as a service: a
/// long-running daemon that wraps one in-process `ftsched::Session` behind
/// the line protocol of server_wire.hpp and amortizes instance loads,
/// schedules and replay-engine templates across requests through the
/// content-addressed ContentCache.
///
/// The headline guarantee is *byte identity*: the report document a server
/// streams back is byte-for-byte what serializing an in-process
/// `Session::evaluate` of the same (instance bytes, spec) produces — cache
/// hit or miss, cold or warm, alone or under concurrent mixed load. It
/// holds because every cached artifact is content-addressed (nothing about
/// request order or client identity reaches a key), the replay template is
/// speed-only by the engine's purity contract, and in-process
/// --target-ci-width early stopping cuts at a wave boundary that is a
/// deterministic function of (seed, SessionOptions::block).
/// tests/test_campaign_server.cpp and the CI smoke legs enforce it.
///
/// Admission control: at most `max_inflight` requests evaluate at once;
/// up to `queue_limit` more wait; anyone beyond that gets an immediate
/// `caft-campaign-busy` document with the controller's state — a client
/// can tell "try later" from "dead server" without timeouts.
///
/// Observability (inert when the obs registry is disabled, like the rest
/// of the library): server.cache.{hit,miss,evict},
/// server.requests.{accepted,rejected}, and the server.queue.depth gauge.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "api/session.hpp"
#include "obs/obs.hpp"
#include "server/content_cache.hpp"
#include "server/server_wire.hpp"
#include "server/socket.hpp"

namespace ftsched {
namespace server {

struct ServerOptions {
  /// Interface to bind (IPv4 dotted quad; see CliArgs::check_listen_address).
  std::string listen_address = "127.0.0.1";
  /// TCP port; 0 binds an ephemeral port — read it back via port().
  std::uint16_t port = 0;
  /// ContentCache entry budget (0 = caching off, every request cold).
  std::size_t cache_capacity = 64;
  /// Concurrent evaluations; 0 rejects every request (drain/maintenance
  /// mode, and how tests exercise the busy document deterministically).
  std::size_t max_inflight = 2;
  /// Requests allowed to wait for a slot before rejection.
  std::size_t queue_limit = 8;
  /// Execution policy of the wrapped Session. Must be in-process
  /// (ExecutionPolicy::Mode::kInProcess) — the byte-identity guarantee
  /// leans on in-process early-stopping determinism, and the replay
  /// template cache has nowhere to go in a worker process. Checked at
  /// construction.
  SessionOptions session;
};

/// Counting semaphore with a bounded wait queue and a legible rejection.
/// Thread-safe; one instance per server.
class Admission {
 public:
  Admission(std::size_t max_inflight, std::size_t queue_limit);

  /// What acquire() decided, plus the state a busy document reports.
  struct Ticket {
    bool admitted = false;
    std::size_t inflight = 0;  ///< running requests at decision time
    std::size_t queued = 0;    ///< waiting requests at decision time
  };

  /// Blocks while a queue slot is free, rejects immediately otherwise
  /// (and always, when max_inflight is 0). An admitted ticket must be
  /// paired with exactly one release().
  [[nodiscard]] Ticket acquire();
  void release();

  [[nodiscard]] std::size_t max_inflight() const { return max_inflight_; }
  [[nodiscard]] std::size_t queue_limit() const { return queue_limit_; }

 private:
  const std::size_t max_inflight_;
  const std::size_t queue_limit_;
  std::mutex lock_;
  std::condition_variable free_slot_;
  std::size_t inflight_ = 0;
  std::size_t waiting_ = 0;
  obs::Counter accepted_;
  obs::Counter rejected_;
  obs::Gauge queue_depth_;
};

class CampaignServer {
 public:
  /// Validates the options (in-process execution only); does not bind —
  /// construction is cheap and serve() works without any socket.
  explicit CampaignServer(ServerOptions options);
  /// stop()s if still running.
  ~CampaignServer();
  CampaignServer(const CampaignServer&) = delete;
  CampaignServer& operator=(const CampaignServer&) = delete;

  /// Handles ONE request: reads a request document from `in`, writes
  /// progress lines (if asked) and exactly one response document to `out`.
  /// Any failure — malformed request, version skew, unknown algorithm,
  /// unparseable instance, spec validation — becomes a
  /// `caft-campaign-error` document, never a dropped connection. This is
  /// the whole per-connection behavior, exposed stream-shaped so protocol
  /// tests run without sockets.
  void serve(std::istream& in, std::ostream& out);

  /// Binds listen_address:port and starts the accept loop (one detached
  /// thread per connection, each running serve()). Throws caft::CheckError
  /// when the bind fails or the server already runs.
  void start();
  /// The bound port (after start(); the ephemeral one when port was 0).
  [[nodiscard]] std::uint16_t port() const;
  /// Graceful drain: stops accepting, then blocks until every in-flight
  /// connection finishes. Idempotent.
  void stop();

  [[nodiscard]] const ServerOptions& options() const { return options_; }

 private:
  /// The admitted path of serve(): resolve cached artifacts, campaign
  /// every algorithm, stream the report.
  void handle(const CampaignRequest& request, std::ostream& out);
  void accept_loop();

  ServerOptions options_;
  ContentCache cache_;
  Admission admission_;

  std::unique_ptr<ListenSocket> listener_;
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};

  /// Open-connection drain state: the accept loop increments under the
  /// lock before detaching a connection thread; the thread decrements
  /// (and notifies) as its very last action, so stop() waiting for 0
  /// cannot miss a thread that still touches `this`.
  std::mutex connections_lock_;
  std::condition_variable connections_done_;
  std::size_t open_connections_ = 0;
};

}  // namespace server
}  // namespace ftsched
