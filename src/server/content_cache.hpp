/// \file content_cache.hpp
/// The campaign server's content-addressed artifact cache.
///
/// Everything the server computes is a pure function of the request's
/// instance *bytes* and spec — so the cache keys derive from content, never
/// from client identity or arrival order:
///
///   instance   i/<fnv1a64(bytes)>            -> loaded Instance
///   schedule   s/<hash>/<algorithm>/<req>    -> ScheduleResult (+ instance)
///   template   t/<schedule-key>/<width>/<e>  -> prebuilt ReplayEngine
///
/// where <req> is the shared wire::write_request_line encoding of the
/// ScheduleRequest (every field that can change a schedule is in it) and
/// <width>/<e> are the θ-bucket width (hexfloat) and exact flag — the two
/// ReplayEngineOptions members that change replay *results*. Snapshot
/// placement and memo capacity are deliberately NOT in the key: they are
/// speed-only by the engine's purity contract, so a template built here
/// with default placement replays bit-identically to the adaptively-placed
/// engine run_campaign would have built. tests/test_campaign_server.cpp
/// holds the server to exactly that (byte-identical reports on hits).
///
/// Lifetimes chain through shared_ptr — a CachedSchedule keeps its
/// Instance alive, a CachedTemplate keeps its CachedSchedule alive — so
/// evicting any entry mid-request never dangles: the request's own handles
/// keep the artifacts alive until it finishes.
///
/// Concurrency: one mutex around everything, *including* artifact builds.
/// That serializes a concurrent miss storm on the same key into one build
/// (the second requester finds the hit), at the cost of serializing
/// unrelated builds too — the right trade for a cache whose point is that
/// builds are rare and hits are the steady state.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "api/instance.hpp"
#include "api/scheduler.hpp"
#include "obs/obs.hpp"
#include "sim/replay_engine.hpp"

namespace ftsched {
namespace server {

class ContentCache {
 public:
  /// A schedule pinned to the instance it references. `key` is the full
  /// content-addressed cache key (instance hash + algorithm + request
  /// fingerprint) — the prefix template keys extend.
  struct CachedSchedule {
    std::shared_ptr<const Instance> instance;
    ScheduleResult result;
    std::string key;
  };

  /// A replay template pinned to the schedule (and, transitively, the
  /// instance) it was built from.
  struct CachedTemplate {
    std::shared_ptr<const CachedSchedule> schedule;
    std::unique_ptr<const caft::ReplayEngine> engine;
  };

  /// `capacity` bounds the *total* entry count across all three families;
  /// the least-recently-used entry is evicted on overflow. 0 disables
  /// caching entirely (every lookup misses and nothing is stored) — the
  /// knob CI uses to drive the always-cold path.
  explicit ContentCache(std::size_t capacity);

  /// The Instance for `bytes` (io/instance_io text), loading on miss.
  /// Writes the content hash — the handle the schedule family is keyed
  /// under — to `*hash`. Throws caft::CheckError on unparseable bytes
  /// (nothing is cached in that case).
  [[nodiscard]] std::shared_ptr<const Instance> instance(
      const std::string& bytes, std::uint64_t* hash);

  /// The ScheduleResult of running `algorithm` (a registry name) on the
  /// cached `instance` under `request`, scheduling on miss.
  [[nodiscard]] std::shared_ptr<const CachedSchedule> schedule(
      const std::shared_ptr<const Instance>& instance,
      std::uint64_t instance_hash, const std::string& algorithm,
      const ScheduleRequest& request);

  /// The ReplayEngine template for `schedule` under the given θ-bucket
  /// width / exact flag, building (with default, uniform snapshot
  /// placement — see the file comment) on miss.
  [[nodiscard]] std::shared_ptr<const CachedTemplate> replay_template(
      const std::shared_ptr<const CachedSchedule>& schedule,
      double theta_bucket_width, bool exact);

  /// Entries currently held, all families combined.
  [[nodiscard]] std::size_t size() const;

 private:
  template <typename T>
  struct Slot {
    std::shared_ptr<T> value;
    std::uint64_t last_used = 0;
  };

  /// Evicts least-recently-used entries until size() <= capacity_. Call
  /// with lock_ held, after an insertion.
  void evict_to_capacity();

  const std::size_t capacity_;
  mutable std::mutex lock_;
  std::uint64_t tick_ = 0;  ///< LRU clock; bumped per lookup under lock_
  std::map<std::string, Slot<const Instance>> instances_;
  std::map<std::string, Slot<const CachedSchedule>> schedules_;
  std::map<std::string, Slot<const CachedTemplate>> templates_;

  obs::Counter hits_;
  obs::Counter misses_;
  obs::Counter evictions_;
};

}  // namespace server
}  // namespace ftsched
