/// \file socket.hpp
/// The campaign server's minimal POSIX TCP layer: a std::iostream over a
/// connected socket, a listener with stoppable accept, and a client-side
/// connect. Deliberately tiny — IPv4 dotted quads only (a listen address
/// names an interface; DNS and its nondeterminism stay out of the server),
/// blocking I/O, no TLS — because the interesting parts of the server
/// (protocol, cache, admission) are all stream-shaped and tested through
/// plain stringstreams; this file only has to carry bytes.
#pragma once

#include <atomic>
#include <cstdint>
#include <iostream>
#include <memory>
#include <streambuf>
#include <string>

namespace ftsched {
namespace server {

/// A streambuf over a connected socket fd: 4 KiB buffers each way, send()
/// with MSG_NOSIGNAL (a peer that hangs up mid-write surfaces as an I/O
/// error on the stream, never SIGPIPE). Owns and closes the fd.
class SocketBuf : public std::streambuf {
 public:
  explicit SocketBuf(int fd);
  ~SocketBuf() override;
  SocketBuf(const SocketBuf&) = delete;
  SocketBuf& operator=(const SocketBuf&) = delete;

 protected:
  int_type underflow() override;
  int_type overflow(int_type ch) override;
  int sync() override;

 private:
  [[nodiscard]] bool flush_output();

  static constexpr std::size_t kBufSize = 4096;
  int fd_;
  char in_[kBufSize];
  char out_[kBufSize];
};

/// std::iostream over a connected socket. Line-protocol friendly: the
/// server and client both talk to it exactly as they talk to the
/// stringstreams the protocol tests use.
class SocketStream : public std::iostream {
 public:
  explicit SocketStream(int fd) : std::iostream(nullptr), buf_(fd) {
    rdbuf(&buf_);
  }

 private:
  SocketBuf buf_;
};

/// A bound, listening TCP socket. Binding port 0 picks an ephemeral port;
/// port() reports the real one (how tests and --port 0 deployments avoid
/// collisions).
class ListenSocket {
 public:
  /// Binds and listens on `address` (IPv4 dotted quad) : `port`. Throws
  /// caft::CheckError on any failure, with the address in the message.
  ListenSocket(const std::string& address, std::uint16_t port);
  ~ListenSocket();
  ListenSocket(const ListenSocket&) = delete;
  ListenSocket& operator=(const ListenSocket&) = delete;

  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// Accepts one connection, polling ~5×/s so a raised `stop` flag is
  /// honoured promptly. Returns a connected stream, or null when `stop`
  /// was raised (or the listener was closed) before a client arrived.
  [[nodiscard]] std::unique_ptr<SocketStream> accept_connection(
      const std::atomic<bool>& stop);

  /// Closes the listening fd; a blocked accept_connection returns null.
  void close();

 private:
  std::atomic<int> fd_;
  std::uint16_t port_ = 0;
};

/// Connects to `address` (IPv4 dotted quad) : `port`; throws
/// caft::CheckError with both in the message on failure.
[[nodiscard]] std::unique_ptr<SocketStream> connect_to(
    const std::string& address, std::uint16_t port);

}  // namespace server
}  // namespace ftsched
