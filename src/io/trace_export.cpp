#include "io/trace_export.hpp"

#include <iomanip>
#include <sstream>

namespace caft {

namespace {

/// Lane ids inside one processor's "process": execution, send port, receive
/// port. Chrome sorts threads by tid.
constexpr int kExecLane = 0;
constexpr int kSendLane = 1;
constexpr int kRecvLane = 2;

class TraceWriter {
 public:
  TraceWriter() {
    os_ << "{\"traceEvents\":[\n";
    os_ << std::fixed << std::setprecision(3);
  }

  // append-built (not `"P" + str`): the char*+string&& operator+ takes
  // libstdc++'s insert path, which GCC 12 misdiagnoses under -Wrestrict
  // (PR105329) and -Werror would reject.
  static std::string lane_label(std::size_t p, const char* suffix) {
    std::string label = "P";
    label += std::to_string(p);
    label += suffix;
    return label;
  }

  void metadata(std::size_t proc_count) {
    for (std::size_t p = 0; p < proc_count; ++p) {
      meta_name(p, kExecLane, lane_label(p, " exec"));
      meta_name(p, kSendLane, lane_label(p, " send"));
      meta_name(p, kRecvLane, lane_label(p, " recv"));
    }
  }

  void duration(const std::string& name, std::size_t proc, int lane,
                double start, double finish, const std::string& category) {
    separator();
    os_ << "{\"name\":\"" << name << "\",\"cat\":\"" << category
        << "\",\"ph\":\"X\",\"ts\":" << start << ",\"dur\":" << finish - start
        << ",\"pid\":" << proc << ",\"tid\":" << lane << "}";
  }

  void flow(std::size_t id, std::size_t src_proc, double src_time,
            std::size_t dst_proc, double dst_time) {
    separator();
    os_ << "{\"name\":\"msg\",\"cat\":\"comm\",\"ph\":\"s\",\"id\":" << id
        << ",\"ts\":" << src_time << ",\"pid\":" << src_proc
        << ",\"tid\":" << kSendLane << "}";
    separator();
    os_ << "{\"name\":\"msg\",\"cat\":\"comm\",\"ph\":\"f\",\"bp\":\"e\","
        << "\"id\":" << id << ",\"ts\":" << dst_time << ",\"pid\":" << dst_proc
        << ",\"tid\":" << kRecvLane << "}";
  }

  void instant(const std::string& name, std::size_t proc, double time) {
    separator();
    os_ << "{\"name\":\"" << name << "\",\"cat\":\"fault\",\"ph\":\"i\","
        << "\"s\":\"p\",\"ts\":" << time << ",\"pid\":" << proc
        << ",\"tid\":" << kExecLane << "}";
  }

  std::string finish() {
    os_ << "\n]}\n";
    return os_.str();
  }

 private:
  void meta_name(std::size_t proc, int lane, const std::string& label) {
    separator();
    os_ << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << proc
        << ",\"tid\":" << lane << ",\"args\":{\"name\":\"" << label << "\"}}";
  }

  void separator() {
    if (!first_) os_ << ",\n";
    first_ = false;
  }

  std::ostringstream os_;
  bool first_ = true;
};

void emit_comms(TraceWriter& writer, const Schedule& schedule,
                const CrashResult* result) {
  for (std::size_t ci = 0; ci < schedule.comms().size(); ++ci) {
    const CommAssignment& c = schedule.comms()[ci];
    if (c.intra()) continue;
    if (result != nullptr) {
      // In a replay trace only delivered messages appear; a message was
      // delivered iff both endpoints' data exists (approximation: source
      // replica completed and destination processor not dead at arrival).
      const bool src_done =
          result->completed[c.from.task.index()][c.from.replica];
      if (!src_done) continue;
    }
    const std::string label = schedule.graph().name(c.from.task) + "#" +
                              std::to_string(c.from.replica) + "->" +
                              schedule.graph().name(c.to.task) + "#" +
                              std::to_string(c.to.replica);
    writer.duration(label, c.src_proc.index(), kSendLane, c.times.link_start,
                    c.times.send_finish, "send");
    writer.duration(label, c.dst_proc.index(), kRecvLane, c.times.recv_start,
                    c.times.arrival, "recv");
    writer.flow(ci, c.src_proc.index(), c.times.link_start, c.dst_proc.index(),
                c.times.arrival);
  }
}

}  // namespace

std::string to_chrome_trace(const Schedule& schedule) {
  TraceWriter writer;
  writer.metadata(schedule.platform().proc_count());
  for (const TaskId t : schedule.graph().all_tasks()) {
    const std::size_t total = schedule.total_replicas(t);
    for (ReplicaIndex r = 0; r < total; ++r) {
      const ReplicaAssignment& a = schedule.replica(t, r);
      writer.duration(
          schedule.graph().name(t) + "#" + std::to_string(r), a.proc.index(),
          kExecLane, a.start, a.finish,
          r < schedule.primary_count() ? "exec" : "duplicate");
    }
  }
  emit_comms(writer, schedule, nullptr);
  return writer.finish();
}

std::string to_chrome_trace(const Schedule& schedule, const CrashResult& result,
                            const CrashScenario& scenario) {
  TraceWriter writer;
  writer.metadata(schedule.platform().proc_count());
  for (std::size_t p = 0; p < scenario.proc_count(); ++p) {
    const auto proc = ProcId(static_cast<ProcId::value_type>(p));
    if (scenario.crash_time(proc) < std::numeric_limits<double>::infinity())
      writer.instant("CRASH", p, scenario.crash_time(proc));
  }
  for (const TaskId t : schedule.graph().all_tasks()) {
    const std::size_t total = schedule.total_replicas(t);
    for (ReplicaIndex r = 0; r < total; ++r) {
      if (!result.completed[t.index()][r]) continue;
      const ReplicaAssignment& a = schedule.replica(t, r);
      const double finish = result.finish[t.index()][r];
      writer.duration(schedule.graph().name(t) + "#" + std::to_string(r),
                      a.proc.index(), kExecLane, finish - (a.finish - a.start),
                      finish, "exec");
    }
  }
  emit_comms(writer, schedule, &result);
  return writer.finish();
}

}  // namespace caft
