/// \file dot_export.hpp
/// Graphviz DOT rendering of task graphs and schedules, for papers, docs and
/// debugging. `dot -Tsvg graph.dot -o graph.svg` does the rest.
#pragma once

#include <string>

#include "dag/task_graph.hpp"
#include "platform/cost_model.hpp"
#include "sched/schedule.hpp"

namespace caft {

/// Rendering knobs for graph export.
struct DotOptions {
  bool show_volumes = true;     ///< label edges with V(ti, tj)
  bool left_to_right = true;    ///< rankdir=LR instead of top-down
};

/// DOT source of the bare task graph.
[[nodiscard]] std::string to_dot(const TaskGraph& graph,
                                 const DotOptions& options = {});

/// DOT source of a schedule: one cluster per processor containing its
/// replicas (ordered by start time), committed communications as edges
/// between replicas (dashed when they cross processors). Duplicates appear
/// with a distinct fill.
[[nodiscard]] std::string to_dot(const Schedule& schedule,
                                 const DotOptions& options = {});

}  // namespace caft
