#include "io/instance_io.hpp"

#include <fstream>
#include <iomanip>
#include <sstream>

#include "common/check.hpp"

namespace caft {

namespace {

constexpr const char* kMagic = "caft-instance";
constexpr const char* kVersion = "v1";

/// Full round-trip precision for doubles.
std::ostream& full(std::ostream& os) {
  return os << std::setprecision(17);
}

std::string keyword(std::istream& is) {
  std::string word;
  CAFT_CHECK_MSG(static_cast<bool>(is >> word), "unexpected end of instance");
  return word;
}

void expect(std::istream& is, const std::string& expected) {
  const std::string got = keyword(is);
  CAFT_CHECK_MSG(got == expected,
                 "malformed instance: expected '" + expected + "', got '" +
                     got + "'");
}

template <typename T>
T number(std::istream& is) {
  T value{};
  CAFT_CHECK_MSG(static_cast<bool>(is >> value), "malformed number");
  return value;
}

std::string rest_of_line(std::istream& is) {
  std::string line;
  std::getline(is, line);
  // Drop the single separating space the writer emits.
  if (!line.empty() && line.front() == ' ') line.erase(0, 1);
  return line;
}

}  // namespace

void save_instance(std::ostream& os, const TaskGraph& graph,
                   const Platform& platform, const CostModel& costs,
                   const Schedule* schedule) {
  CAFT_CHECK_MSG(costs.task_count() == graph.task_count(),
                 "cost model does not match the graph");
  full(os) << kMagic << ' ' << kVersion << '\n';

  os << "graph " << graph.task_count() << ' ' << graph.edge_count() << '\n';
  for (const TaskId t : graph.all_tasks())
    os << "task " << t.value() << ' ' << graph.name(t) << '\n';
  for (const Edge& e : graph.edges())
    os << "edge " << e.src.value() << ' ' << e.dst.value() << ' ' << e.volume
       << '\n';

  // Cables: add_bidirectional emits link pairs (2k, 2k+1), so the even
  // links enumerate the cables in construction order.
  const Topology& topology = platform.topology();
  CAFT_CHECK_MSG(topology.link_count() % 2 == 0,
                 "topology links must come in bidirectional pairs");
  os << "platform " << platform.proc_count() << ' '
     << topology.link_count() / 2 << '\n';
  for (std::size_t l = 0; l < topology.link_count(); l += 2) {
    const LinkDef& def = topology.link(LinkId(static_cast<LinkId::value_type>(l)));
    os << "cable " << def.from.value() << ' ' << def.to.value() << '\n';
  }

  for (const TaskId t : graph.all_tasks())
    for (const ProcId p : platform.all_procs())
      os << "exec " << t.value() << ' ' << p.value() << ' ' << costs.exec(t, p)
         << '\n';
  for (std::size_t l = 0; l < topology.link_count(); ++l)
    os << "delay " << l << ' '
       << costs.unit_delay(LinkId(static_cast<LinkId::value_type>(l))) << '\n';

  if (schedule != nullptr) {
    CAFT_CHECK_MSG(schedule->complete(), "only complete schedules serialize");
    std::size_t duplicates = 0;
    for (const TaskId t : graph.all_tasks())
      duplicates += schedule->duplicates(t).size();
    os << "schedule " << schedule->eps() << ' '
       << (schedule->model() == CommModelKind::kOnePort ? "oneport" : "macro")
       << ' ' << duplicates << '\n';
    for (const TaskId t : graph.all_tasks())
      for (ReplicaIndex r = 0;
           r < static_cast<ReplicaIndex>(schedule->primary_count()); ++r) {
        const ReplicaAssignment& a = schedule->replica(t, r);
        os << "replica " << t.value() << ' ' << r << ' ' << a.proc.value()
           << ' ' << a.start << ' ' << a.finish << '\n';
      }
    for (const TaskId t : graph.all_tasks())
      for (const ReplicaAssignment& a : schedule->duplicates(t))
        os << "duplicate " << t.value() << ' ' << a.proc.value() << ' '
           << a.start << ' ' << a.finish << '\n';
    for (const CommAssignment& c : schedule->comms()) {
      os << "comm " << c.edge << ' ' << c.from.replica << ' ' << c.to.replica
         << ' ' << c.src_proc.value() << ' ' << c.dst_proc.value() << ' '
         << c.volume << ' ' << c.times.link_start << ' ' << c.times.link_finish
         << ' ' << c.times.send_finish << ' ' << c.times.recv_start << ' '
         << c.times.arrival << ' ' << c.times.segments.size();
      for (const LinkOccupancy& seg : c.times.segments)
        os << ' ' << seg.link.value() << ' ' << seg.start << ' ' << seg.finish;
      os << '\n';
    }
  }
  os << "end\n";
}

InstanceBundle load_instance(std::istream& is) {
  expect(is, kMagic);
  expect(is, kVersion);

  InstanceBundle bundle;

  expect(is, "graph");
  const auto task_count = number<std::size_t>(is);
  const auto edge_count = number<std::size_t>(is);
  bundle.graph = std::make_unique<TaskGraph>(task_count);
  for (std::size_t i = 0; i < task_count; ++i) {
    expect(is, "task");
    const auto id = number<std::uint32_t>(is);
    CAFT_CHECK_MSG(id == i, "task ids must be dense and ordered");
    bundle.graph->add_task(rest_of_line(is));
  }
  for (std::size_t i = 0; i < edge_count; ++i) {
    expect(is, "edge");
    const auto src = number<std::uint32_t>(is);
    const auto dst = number<std::uint32_t>(is);
    const auto volume = number<double>(is);
    bundle.graph->add_edge(TaskId(src), TaskId(dst), volume);
  }

  expect(is, "platform");
  const auto proc_count = number<std::size_t>(is);
  const auto cable_count = number<std::size_t>(is);
  std::vector<std::pair<std::size_t, std::size_t>> cables;
  cables.reserve(cable_count);
  for (std::size_t i = 0; i < cable_count; ++i) {
    expect(is, "cable");
    const auto a = number<std::size_t>(is);
    const auto b = number<std::size_t>(is);
    cables.emplace_back(a, b);
  }
  bundle.platform =
      std::make_unique<Platform>(Topology::custom(proc_count, cables));

  bundle.costs = std::make_unique<CostModel>(task_count, *bundle.platform);
  for (std::size_t i = 0; i < task_count * proc_count; ++i) {
    expect(is, "exec");
    const auto t = number<std::uint32_t>(is);
    const auto p = number<std::uint32_t>(is);
    const auto time = number<double>(is);
    bundle.costs->set_exec(TaskId(t), ProcId(p), time);
  }
  for (std::size_t i = 0; i < cable_count * 2; ++i) {
    expect(is, "delay");
    const auto l = number<std::uint32_t>(is);
    const auto delay = number<double>(is);
    bundle.costs->set_unit_delay(LinkId(l), delay);
  }

  std::string word = keyword(is);
  if (word == "schedule") {
    const auto eps = number<std::size_t>(is);
    const std::string model_word = keyword(is);
    CAFT_CHECK_MSG(model_word == "oneport" || model_word == "macro",
                   "unknown schedule model '" + model_word + "'");
    const CommModelKind model = model_word == "oneport"
                                    ? CommModelKind::kOnePort
                                    : CommModelKind::kMacroDataflow;
    const auto duplicate_count = number<std::size_t>(is);
    bundle.schedule = std::make_unique<Schedule>(*bundle.graph,
                                                 *bundle.platform, eps, model);
    for (std::size_t i = 0; i < task_count * (eps + 1); ++i) {
      expect(is, "replica");
      const auto t = number<std::uint32_t>(is);
      const auto r = number<ReplicaIndex>(is);
      const auto p = number<std::uint32_t>(is);
      const auto start = number<double>(is);
      const auto finish = number<double>(is);
      bundle.schedule->set_replica(TaskId(t), r,
                                   ReplicaAssignment{ProcId(p), start, finish});
    }
    for (std::size_t i = 0; i < duplicate_count; ++i) {
      expect(is, "duplicate");
      const auto t = number<std::uint32_t>(is);
      const auto p = number<std::uint32_t>(is);
      const auto start = number<double>(is);
      const auto finish = number<double>(is);
      bundle.schedule->add_duplicate(TaskId(t),
                                     ReplicaAssignment{ProcId(p), start, finish});
    }
    while ((word = keyword(is)) == "comm") {
      CommAssignment c;
      c.edge = number<EdgeIndex>(is);
      const Edge& e = bundle.graph->edge(c.edge);
      c.from.task = e.src;
      c.to.task = e.dst;
      c.from.replica = number<ReplicaIndex>(is);
      c.to.replica = number<ReplicaIndex>(is);
      c.src_proc = ProcId(number<std::uint32_t>(is));
      c.dst_proc = ProcId(number<std::uint32_t>(is));
      c.volume = number<double>(is);
      c.times.link_start = number<double>(is);
      c.times.link_finish = number<double>(is);
      c.times.send_finish = number<double>(is);
      c.times.recv_start = number<double>(is);
      c.times.arrival = number<double>(is);
      const auto segments = number<std::size_t>(is);
      c.times.segments.reserve(segments);
      for (std::size_t s = 0; s < segments; ++s) {
        LinkOccupancy seg;
        seg.link = LinkId(number<std::uint32_t>(is));
        seg.start = number<double>(is);
        seg.finish = number<double>(is);
        c.times.segments.push_back(seg);
      }
      bundle.schedule->add_comm(std::move(c));
    }
  }
  CAFT_CHECK_MSG(word == "end", "malformed instance: missing 'end'");
  return bundle;
}

void save_instance_file(const std::string& path, const TaskGraph& graph,
                        const Platform& platform, const CostModel& costs,
                        const Schedule* schedule) {
  std::ofstream os(path);
  CAFT_CHECK_MSG(static_cast<bool>(os), "cannot open '" + path + "' for writing");
  save_instance(os, graph, platform, costs, schedule);
  CAFT_CHECK_MSG(static_cast<bool>(os), "write to '" + path + "' failed");
}

InstanceBundle load_instance_file(const std::string& path) {
  std::ifstream is(path);
  CAFT_CHECK_MSG(static_cast<bool>(is), "cannot open '" + path + "'");
  return load_instance(is);
}

}  // namespace caft
