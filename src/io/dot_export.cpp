#include "io/dot_export.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <vector>

namespace caft {

namespace {

/// DOT identifiers must be quoted when they carry punctuation; task names
/// like "gemm(1,2,0)" do.
std::string quoted(const std::string& name) {
  std::string out = "\"";
  for (const char c : name) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
  return out;
}

std::string replica_node(const Schedule& schedule, TaskId t, ReplicaIndex r) {
  return quoted(schedule.graph().name(t) + "#" + std::to_string(r));
}

}  // namespace

std::string to_dot(const TaskGraph& graph, const DotOptions& options) {
  std::ostringstream os;
  os << "digraph taskgraph {\n";
  if (options.left_to_right) os << "  rankdir=LR;\n";
  os << "  node [shape=ellipse];\n";
  for (const TaskId t : graph.all_tasks())
    os << "  " << quoted(graph.name(t)) << ";\n";
  os << std::fixed << std::setprecision(1);
  for (const Edge& e : graph.edges()) {
    os << "  " << quoted(graph.name(e.src)) << " -> "
       << quoted(graph.name(e.dst));
    if (options.show_volumes) os << " [label=\"" << e.volume << "\"]";
    os << ";\n";
  }
  os << "}\n";
  return os.str();
}

std::string to_dot(const Schedule& schedule, const DotOptions& options) {
  const TaskGraph& graph = schedule.graph();
  std::ostringstream os;
  os << "digraph schedule {\n";
  if (options.left_to_right) os << "  rankdir=LR;\n";
  os << "  node [shape=box];\n" << std::fixed << std::setprecision(1);

  // One cluster per processor, replicas sorted by start time.
  const std::size_t m = schedule.platform().proc_count();
  std::vector<std::vector<std::pair<double, std::string>>> lanes(m);
  for (const TaskId t : graph.all_tasks()) {
    const std::size_t total = schedule.total_replicas(t);
    for (ReplicaIndex r = 0; r < total; ++r) {
      const ReplicaAssignment& a = schedule.replica(t, r);
      std::ostringstream node;
      node << "    " << replica_node(schedule, t, r) << " [label=\""
           << graph.name(t) << "#" << r << "\\n[" << a.start << ", "
           << a.finish << ")\"";
      if (r >= schedule.primary_count())
        node << " style=filled fillcolor=lightyellow";  // MST duplicate
      node << "];\n";
      lanes[a.proc.index()].emplace_back(a.start, node.str());
    }
  }
  for (std::size_t p = 0; p < m; ++p) {
    os << "  subgraph cluster_P" << p << " {\n    label=\"P" << p << "\";\n";
    std::sort(lanes[p].begin(), lanes[p].end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (const auto& [start, node] : lanes[p]) os << node;
    os << "  }\n";
  }

  for (const CommAssignment& c : schedule.comms()) {
    os << "  " << replica_node(schedule, c.from.task, c.from.replica) << " -> "
       << replica_node(schedule, c.to.task, c.to.replica);
    if (c.intra()) {
      os << " [color=gray]";
    } else {
      os << " [style=dashed";
      if (options.show_volumes)
        os << " label=\"@" << c.times.arrival << "\"";
      os << "]";
    }
    os << ";\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace caft
