/// \file trace_export.hpp
/// Chrome trace-event JSON export of schedules and crash replays: open the
/// file in chrome://tracing or https://ui.perfetto.dev to scrub through the
/// execution. Processors map to "threads" (execution lane plus send/receive
/// port lanes), replicas and message legs to duration events, and committed
/// communications to flow arrows from sender to receiver.
#pragma once

#include <string>

#include "sched/schedule.hpp"
#include "sim/crash_sim.hpp"

namespace caft {

/// Trace of the committed schedule.
[[nodiscard]] std::string to_chrome_trace(const Schedule& schedule);

/// Trace of a crash re-execution: only the work that actually happened,
/// with the crash set recorded as instant events.
[[nodiscard]] std::string to_chrome_trace(const Schedule& schedule,
                                          const CrashResult& result,
                                          const CrashScenario& scenario);

}  // namespace caft
