/// \file instance_io.hpp
/// Plain-text serialization of a full scheduling instance — task graph,
/// platform topology, cost model, and (optionally) a committed schedule —
/// with exact round-tripping. The format is line-oriented and versioned, so
/// instances can be archived next to experiment results, diffed, or fed to
/// external tooling.
///
/// Format sketch (whitespace separated, names are the rest of their line):
///   caft-instance v1
///   graph <tasks> <edges>
///   task <id> <name...>
///   edge <src> <dst> <volume>
///   platform <m> <cables>
///   cable <a> <b>
///   exec <task> <proc> <time>
///   delay <link> <unit-delay>
///   schedule <eps> <macro|oneport> <duplicate-count>
///   replica <task> <r> <proc> <start> <finish>
///   duplicate <task> <proc> <start> <finish>
///   comm <edge> <from-r> <to-r> <src-proc> <dst-proc> <volume>
///        <link-start> <link-finish> <send-finish> <recv-start> <arrival>
///        <segments> {<link> <start> <finish>}*   (one line per comm)
///   end
#pragma once

#include <iosfwd>
#include <memory>
#include <string>

#include "platform/cost_model.hpp"
#include "platform/platform.hpp"
#include "sched/schedule.hpp"

namespace caft {

/// A loaded instance. Every part sits behind unique_ptr so the internal
/// cross-references (costs -> platform, schedule -> graph + platform) stay
/// valid when the bundle moves — including the move out of load_instance
/// itself when the compiler does not elide it.
struct InstanceBundle {
  std::unique_ptr<TaskGraph> graph;
  std::unique_ptr<Platform> platform;
  std::unique_ptr<CostModel> costs;
  std::unique_ptr<Schedule> schedule;  ///< null when none was serialized
};

/// Writes an instance; `schedule` may be null.
void save_instance(std::ostream& os, const TaskGraph& graph,
                   const Platform& platform, const CostModel& costs,
                   const Schedule* schedule = nullptr);

/// Parses an instance; throws CheckError on malformed input.
[[nodiscard]] InstanceBundle load_instance(std::istream& is);

/// Convenience file wrappers; the loader throws on unreadable paths.
void save_instance_file(const std::string& path, const TaskGraph& graph,
                        const Platform& platform, const CostModel& costs,
                        const Schedule* schedule = nullptr);
[[nodiscard]] InstanceBundle load_instance_file(const std::string& path);

}  // namespace caft
