/// Domain example: a streaming image-processing pipeline on an edge cluster.
///
/// A stage-parallel pipeline (split -> per-band filtering -> wavefront
/// refinement -> merge) models the kind of application the paper's
/// introduction motivates: throughput-oriented work on a heterogeneous
/// cluster where any node may drop out. The example builds the pipeline DAG
/// by hand with the public TaskGraph API (no generator), schedules it with
/// CAFT at eps = 1 and eps = 2, and prints the latency/overhead trade-off
/// together with the Gantt chart of the eps = 1 schedule.
#include <cstdio>
#include <iostream>

#include "algo/caft.hpp"
#include "algo/heft.hpp"
#include "metrics/gantt.hpp"
#include "metrics/metrics.hpp"
#include "platform/cost_synthesis.hpp"
#include "sim/resilience.hpp"

namespace {

using namespace caft;

/// split -> bands x (denoise -> sharpen) -> 2x2 wavefront blend -> merge.
TaskGraph build_pipeline(std::size_t bands) {
  TaskGraph g;
  const TaskId split = g.add_task("split");
  std::vector<TaskId> sharpened;
  for (std::size_t b = 0; b < bands; ++b) {
    const TaskId denoise = g.add_task("denoise" + std::to_string(b));
    const TaskId sharpen = g.add_task("sharpen" + std::to_string(b));
    g.add_edge(split, denoise, 120.0);   // band pixels
    g.add_edge(denoise, sharpen, 120.0);
    sharpened.push_back(sharpen);
  }
  // 2x2 wavefront blend over neighbouring bands.
  std::vector<TaskId> blended;
  for (std::size_t b = 0; b + 1 < sharpened.size(); ++b) {
    const TaskId blend = g.add_task("blend" + std::to_string(b));
    g.add_edge(sharpened[b], blend, 60.0);
    g.add_edge(sharpened[b + 1], blend, 60.0);
    blended.push_back(blend);
  }
  const TaskId merge = g.add_task("merge");
  for (const TaskId b : blended) g.add_edge(b, merge, 60.0);
  return g;
}

}  // namespace

int main() {
  const TaskGraph graph = build_pipeline(6);
  const Platform platform(8);
  Rng rng(11);
  CostSynthesisParams params;
  params.granularity = 0.5;  // bandwidth-hungry pipeline
  const CostModel costs = synthesize_costs(graph, platform, params, rng);

  std::printf("image pipeline: %zu tasks, %zu edges on m=%zu processors\n\n",
              graph.task_count(), graph.edge_count(), platform.proc_count());

  const Schedule baseline =
      heft_schedule(graph, platform, costs, CommModelKind::kOnePort);
  std::printf("%-18s latency %8.1f   (no failures survived)\n",
              "HEFT (fault-free)", baseline.zero_crash_latency());

  Schedule last_tolerant = baseline;
  for (const std::size_t eps : {1u, 2u}) {
    CaftOptions options;
    options.base = SchedulerOptions{eps, CommModelKind::kOnePort};
    Schedule sched = caft_schedule(graph, platform, costs, options);
    const ResilienceReport report =
        check_resilience_exhaustive(sched, costs, eps);
    std::printf("%-10s eps=%zu  latency %8.1f   overhead %+6.1f%%   msgs %3zu"
                "   survives all %zu-subsets: %s\n",
                "CAFT", eps, sched.zero_crash_latency(),
                overhead_percent(sched.zero_crash_latency(),
                                 baseline.zero_crash_latency()),
                sched.message_count(), eps, report.resistant ? "yes" : "NO");
    if (eps == 1) last_tolerant = std::move(sched);
  }

  std::printf("\nGantt of the eps=1 schedule (replicated stages visible):\n");
  GanttOptions gantt;
  gantt.width = 96;
  std::cout << render_gantt(last_tolerant, gantt);
  return 0;
}
