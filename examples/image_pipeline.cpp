/// Domain example: a streaming image-processing pipeline on an edge cluster.
///
/// A stage-parallel pipeline (split -> per-band filtering -> wavefront
/// refinement -> merge) models the kind of application the paper's
/// introduction motivates: throughput-oriented work on a heterogeneous
/// cluster where any node may drop out. The example builds the pipeline DAG
/// by hand with the public TaskGraph API (no generator), wraps it into an
/// ftsched::Instance, schedules it with CAFT (via the registry) at eps = 1
/// and eps = 2, and prints the latency/overhead trade-off together with the
/// Gantt chart of the eps = 1 schedule.
#include <cstdio>
#include <iostream>
#include <optional>

#include "api/api.hpp"
#include "metrics/gantt.hpp"
#include "metrics/metrics.hpp"
#include "sim/resilience.hpp"

namespace {

using namespace caft;

/// split -> bands x (denoise -> sharpen) -> 2x2 wavefront blend -> merge.
TaskGraph build_pipeline(std::size_t bands) {
  TaskGraph g;
  const TaskId split = g.add_task("split");
  std::vector<TaskId> sharpened;
  for (std::size_t b = 0; b < bands; ++b) {
    const TaskId denoise = g.add_task("denoise" + std::to_string(b));
    const TaskId sharpen = g.add_task("sharpen" + std::to_string(b));
    g.add_edge(split, denoise, 120.0);   // band pixels
    g.add_edge(denoise, sharpen, 120.0);
    sharpened.push_back(sharpen);
  }
  // 2x2 wavefront blend over neighbouring bands.
  std::vector<TaskId> blended;
  for (std::size_t b = 0; b + 1 < sharpened.size(); ++b) {
    const TaskId blend = g.add_task("blend" + std::to_string(b));
    g.add_edge(sharpened[b], blend, 60.0);
    g.add_edge(sharpened[b + 1], blend, 60.0);
    blended.push_back(blend);
  }
  const TaskId merge = g.add_task("merge");
  for (const TaskId b : blended) g.add_edge(b, merge, 60.0);
  return g;
}

}  // namespace

int main() {
  CostSynthesisParams params;
  params.granularity = 0.5;  // bandwidth-hungry pipeline
  const ftsched::Instance instance(build_pipeline(6), Platform(8), params,
                                   /*cost_seed=*/11);

  std::printf("image pipeline: %zu tasks, %zu edges on m=%zu processors\n\n",
              instance.graph().task_count(), instance.graph().edge_count(),
              instance.proc_count());

  const ftsched::SchedulerRegistry& registry =
      ftsched::SchedulerRegistry::global();
  const ftsched::ScheduleResult baseline =
      registry.make("heft")->schedule(instance);
  std::printf("%-18s latency %8.1f   (no failures survived)\n",
              "HEFT (fault-free)", baseline.makespan);

  const auto caft_scheduler = registry.make("caft");
  std::optional<ftsched::ScheduleResult> tolerant;
  for (const std::size_t eps : {1u, 2u}) {
    ftsched::ScheduleRequest request;
    request.eps = eps;
    ftsched::ScheduleResult result =
        caft_scheduler->schedule(instance, request);
    const ResilienceReport report =
        check_resilience_exhaustive(result.schedule, instance.costs(), eps);
    std::printf("%-10s eps=%zu  latency %8.1f   overhead %+6.1f%%   msgs %3zu"
                "   survives all %zu-subsets: %s\n",
                "CAFT", eps, result.makespan,
                overhead_percent(result.makespan, baseline.makespan),
                result.messages, eps, report.resistant ? "yes" : "NO");
    if (eps == 1) tolerant = std::move(result);
  }

  std::printf("\nGantt of the eps=1 schedule (replicated stages visible):\n");
  GanttOptions gantt;
  gantt.width = 96;
  std::cout << render_gantt(tolerant->schedule, gantt);
  return 0;
}
