/// Quickstart: the whole public API in one small program.
///
///  1. Build a task graph (here the paper's random layered DAGs).
///  2. Describe the platform (a fully connected heterogeneous cluster) and
///     synthesize costs at a chosen granularity.
///  3. Run the schedulers: HEFT (fault-free), FTSA, FTBAR, CAFT.
///  4. Validate, measure, and check the fault-tolerance guarantee.
///
/// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "algo/caft.hpp"
#include "algo/ftbar.hpp"
#include "algo/ftsa.hpp"
#include "algo/heft.hpp"
#include "dag/generators.hpp"
#include "metrics/metrics.hpp"
#include "platform/cost_synthesis.hpp"
#include "sched/validator.hpp"
#include "sim/resilience.hpp"

int main() {
  using namespace caft;

  // 1. A random precedence graph per the paper's protocol: 80-120 tasks,
  //    fan-out 1-3, edge volumes in [50, 150].
  Rng rng(2008);
  const TaskGraph graph = random_dag(RandomDagParams{}, rng);
  std::printf("task graph: %zu tasks, %zu edges\n", graph.task_count(),
              graph.edge_count());

  // 2. Ten fully connected heterogeneous processors; costs drawn so the
  //    granularity (computation/communication ratio) is exactly 1.0.
  const Platform platform(10);
  CostSynthesisParams cost_params;
  cost_params.granularity = 1.0;
  const CostModel costs = synthesize_costs(graph, platform, cost_params, rng);
  std::printf("platform: m=%zu processors, granularity g(G,P)=%.2f\n\n",
              platform.proc_count(), costs.granularity(graph));

  // 3. Schedule. eps = 2 failures must be survivable.
  const std::size_t eps = 2;
  const SchedulerOptions options{eps, CommModelKind::kOnePort};

  const Schedule heft =
      heft_schedule(graph, platform, costs, CommModelKind::kOnePort);
  const Schedule ftsa = ftsa_schedule(graph, platform, costs, options);
  FtbarOptions ftbar_options;
  ftbar_options.base = options;
  const Schedule ftbar = ftbar_schedule(graph, platform, costs, ftbar_options);
  CaftOptions caft_options;
  caft_options.base = options;
  const Schedule caft = caft_schedule(graph, platform, costs, caft_options);

  // 4a. Validate (structure + one-port conformance).
  for (const auto& [name, sched] :
       {std::pair<const char*, const Schedule*>{"HEFT", &heft},
        {"FTSA", &ftsa},
        {"FTBAR", &ftbar},
        {"CAFT", &caft}}) {
    const ValidationResult result = validate_schedule(*sched, costs);
    std::printf("%-6s valid=%s  latency=%8.1f (normalized %5.2f)  "
                "messages=%4zu\n",
                name, result.ok() ? "yes" : "NO", sched->zero_crash_latency(),
                normalized_latency(sched->zero_crash_latency(), graph, costs),
                sched->message_count());
  }

  // 4b. The guarantee: every crash set of eps processors leaves a complete
  //     copy of every task (Proposition 5.2; CAFT's default support mode
  //     makes this a theorem).
  const ResilienceReport report = check_resilience_exhaustive(caft, costs, eps);
  std::printf("\nCAFT resilience: %zu/%zu crash subsets of size %zu survive\n",
              report.scenarios_tested - report.failures,
              report.scenarios_tested, eps);
  std::printf("re-executed latency across surviving subsets: best %.1f, "
              "worst %.1f (0-crash estimate %.1f)\n",
              report.best_latency, report.worst_latency,
              caft.zero_crash_latency());
  return report.resistant ? 0 : 1;
}
