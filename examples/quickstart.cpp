/// Quickstart: the whole public API in one small program, built on the
/// ftsched:: facade (api/api.hpp) — the same flow the README's "Library
/// API" section walks through:
///
///  1. Build an Instance: task graph + platform + synthesized costs + ε.
///  2. Enumerate the SchedulerRegistry and schedule with every algorithm.
///  3. Read the ScheduleResult: makespan, messages, validator verdict,
///     typed per-algorithm stats.
///  4. Run a Monte-Carlo fault-injection campaign through a Session.
///
/// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "api/api.hpp"
#include "dag/generators.hpp"
#include "metrics/metrics.hpp"

int main() {
  using namespace ftsched;

  // 1. An Instance bundles the paper's random DAG (80-120 tasks), a fully
  //    connected 10-processor heterogeneous platform, costs synthesized at
  //    granularity 1.0, and the reliability target eps = 2.
  caft::Rng rng(2008);
  caft::TaskGraph graph = caft::random_dag(caft::RandomDagParams{}, rng);
  caft::CostSynthesisParams cost_params;
  cost_params.granularity = 1.0;
  const Instance instance(std::move(graph), caft::Platform(10), cost_params,
                          rng, RunOptions{/*eps=*/2});
  std::printf("instance: %zu tasks, %zu edges, m=%zu, g=%.2f, eps=%zu\n\n",
              instance.graph().task_count(), instance.graph().edge_count(),
              instance.proc_count(),
              instance.costs().granularity(instance.graph()),
              instance.eps());

  // 2+3. Every registered algorithm (caft, caft-batch, ftsa, ftbar, heft),
  //      discovered by name — no per-algorithm includes or call sites.
  SchedulerRegistry::global().for_each([&](const Scheduler& scheduler) {
    const ScheduleResult result = scheduler.schedule(instance);
    std::printf("%-10s eps=%zu  valid=%-3s  latency=%8.1f (normalized "
                "%5.2f)  messages=%4zu\n",
                scheduler.name().c_str(), result.eps,
                result.ok() ? "yes" : "NO", result.makespan,
                caft::normalized_latency(result.makespan, instance.graph(),
                                         instance.costs()),
                result.messages);
    // Typed per-algorithm stats ride along in the result.
    if (const auto* stats = result.stats_as<caft::CaftRunStats>())
      std::printf("           one-to-one commits=%zu, fallbacks=%zu\n",
                  stats->one_to_one_commits, stats->fallback_commits);
  });

  // 4. The distributional question the paper's single-crash-set protocol
  //    cannot answer: survival probability and latency quantiles under
  //    3000 random <=eps crash sets, via the campaign service facade.
  Session session;
  CampaignSpec spec;
  spec.algorithms = {"caft", "ftsa"};
  spec.sampler = SamplerSpec::uniform_k(instance.eps());
  spec.replays = 3000;
  const CampaignReport report = session.evaluate(instance, spec);
  std::printf("\ncampaign: %zu replays of uniform-%zu crash sets\n",
              spec.replays, instance.eps());
  bool all_survived = true;
  for (const CampaignRun& run : report.runs) {
    std::printf("%-10s survived %zu/%zu, mean crash latency %.1f "
                "(0-crash %.1f)\n",
                run.algorithm.c_str(), run.summary.successes,
                run.summary.replays, run.summary.latency.mean(),
                run.result.makespan);
    // Proposition 5.2: every <=eps crash set must be survived.
    all_survived = all_survived &&
                   run.summary.successes_within_eps ==
                       run.summary.replays_within_eps;
  }
  std::printf("every <=eps crash set survived: %s\n",
              all_survived ? "yes" : "NO");
  return all_survived ? 0 : 1;
}
