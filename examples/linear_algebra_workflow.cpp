/// Domain example: fault-tolerant scheduling of dense linear-algebra task
/// graphs — the classic workloads of the list-scheduling literature.
///
/// Three kernels are scheduled on a 12-processor heterogeneous cluster with
/// one failure to survive:
///   - Gaussian elimination (k = 8): the pivot/update dependency lattice;
///   - tiled Cholesky (6x6 tiles): POTRF/TRSM/SYRK/GEMM kernels;
///   - FFT (16 points): the butterfly exchange pattern.
///
/// For each, the example compares the fault-free HEFT latency against CAFT
/// with eps = 1 (both obtained by name from the SchedulerRegistry) and
/// reports the replication overhead the paper's formula assigns — the price
/// of surviving a node loss mid-factorization.
#include <cstdio>

#include "api/api.hpp"
#include "dag/generators.hpp"
#include "metrics/metrics.hpp"
#include "sched/bounds.hpp"
#include "sim/resilience.hpp"

namespace {

using namespace caft;

void run_workflow(const char* name, TaskGraph graph, double granularity) {
  CostSynthesisParams params;
  params.granularity = granularity;
  const ftsched::Instance instance(std::move(graph), Platform(12), params,
                                   /*cost_seed=*/7, ftsched::RunOptions{1});

  const ftsched::SchedulerRegistry& registry =
      ftsched::SchedulerRegistry::global();
  const ftsched::ScheduleResult baseline =
      registry.make("heft")->schedule(instance);
  const ftsched::ScheduleResult tolerant =
      registry.make("caft")->schedule(instance);

  const ScheduleStats stats = schedule_stats(tolerant.schedule);
  const ResilienceReport report =
      check_resilience_exhaustive(tolerant.schedule, instance.costs(), 1);

  std::printf("%-22s %4zu tasks %4zu edges | HEFT %8.1f | CAFT(eps=1) %8.1f "
              "(overhead %+5.1f%%) | msgs %3zu | util %4.1f%% | survives all "
              "single failures: %s\n",
              name, instance.graph().task_count(),
              instance.graph().edge_count(), baseline.makespan,
              tolerant.makespan,
              overhead_percent(tolerant.makespan, baseline.makespan),
              tolerant.messages, 100.0 * stats.mean_utilization,
              report.resistant ? "yes" : "NO");
}

}  // namespace

int main() {
  std::printf("fault-tolerant scheduling of linear-algebra workflows "
              "(m=12, eps=1, one-port model)\n\n");
  run_workflow("gaussian-elimination", caft::gaussian_elimination(8, 80.0),
               1.0);
  run_workflow("cholesky 6x6 tiles", caft::cholesky(6, 80.0), 1.0);
  run_workflow("fft 16-point", caft::fft(4, 80.0), 1.0);
  // The same kernels in a communication-dominated regime: replication is
  // pricier exactly where the paper says contention bites.
  std::printf("\nsame kernels, communication-dominated (granularity 0.2):\n\n");
  run_workflow("gaussian-elimination", caft::gaussian_elimination(8, 80.0),
               0.2);
  run_workflow("cholesky 6x6 tiles", caft::cholesky(6, 80.0), 0.2);
  run_workflow("fft 16-point", caft::fft(4, 80.0), 0.2);
  return 0;
}
