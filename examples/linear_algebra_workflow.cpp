/// Domain example: fault-tolerant scheduling of dense linear-algebra task
/// graphs — the classic workloads of the list-scheduling literature.
///
/// Three kernels are scheduled on a 12-processor heterogeneous cluster with
/// one failure to survive:
///   - Gaussian elimination (k = 8): the pivot/update dependency lattice;
///   - tiled Cholesky (6x6 tiles): POTRF/TRSM/SYRK/GEMM kernels;
///   - FFT (16 points): the butterfly exchange pattern.
///
/// For each, the example compares the fault-free HEFT latency against CAFT
/// with eps = 1 and reports the replication overhead the paper's formula
/// assigns — the price of surviving a node loss mid-factorization.
#include <cstdio>

#include "algo/caft.hpp"
#include "algo/heft.hpp"
#include "dag/generators.hpp"
#include "metrics/metrics.hpp"
#include "platform/cost_synthesis.hpp"
#include "sched/bounds.hpp"
#include "sim/resilience.hpp"

namespace {

using namespace caft;

void run_workflow(const char* name, TaskGraph graph, double granularity) {
  const Platform platform(12);
  Rng rng(7);
  CostSynthesisParams params;
  params.granularity = granularity;
  const CostModel costs = synthesize_costs(graph, platform, params, rng);

  const Schedule baseline =
      heft_schedule(graph, platform, costs, CommModelKind::kOnePort);
  CaftOptions options;
  options.base = SchedulerOptions{1, CommModelKind::kOnePort};
  const Schedule tolerant = caft_schedule(graph, platform, costs, options);

  const ScheduleStats stats = schedule_stats(tolerant);
  const ResilienceReport report =
      check_resilience_exhaustive(tolerant, costs, 1);

  std::printf("%-22s %4zu tasks %4zu edges | HEFT %8.1f | CAFT(eps=1) %8.1f "
              "(overhead %+5.1f%%) | msgs %3zu | util %4.1f%% | survives all "
              "single failures: %s\n",
              name, graph.task_count(), graph.edge_count(),
              baseline.zero_crash_latency(), tolerant.zero_crash_latency(),
              overhead_percent(tolerant.zero_crash_latency(),
                               baseline.zero_crash_latency()),
              tolerant.message_count(), 100.0 * stats.mean_utilization,
              report.resistant ? "yes" : "NO");
}

}  // namespace

int main() {
  std::printf("fault-tolerant scheduling of linear-algebra workflows "
              "(m=12, eps=1, one-port model)\n\n");
  run_workflow("gaussian-elimination", caft::gaussian_elimination(8, 80.0),
               1.0);
  run_workflow("cholesky 6x6 tiles", caft::cholesky(6, 80.0), 1.0);
  run_workflow("fft 16-point", caft::fft(4, 80.0), 1.0);
  // The same kernels in a communication-dominated regime: replication is
  // pricier exactly where the paper says contention bites.
  std::printf("\nsame kernels, communication-dominated (granularity 0.2):\n\n");
  run_workflow("gaussian-elimination", caft::gaussian_elimination(8, 80.0),
               0.2);
  run_workflow("cholesky 6x6 tiles", caft::cholesky(6, 80.0), 0.2);
  run_workflow("fft 16-point", caft::fft(4, 80.0), 0.2);
  return 0;
}
