/// Crash replay: watch a fault-tolerant schedule absorb real failures.
///
/// Schedules a wavefront stencil with CAFT (via the SchedulerRegistry) at
/// eps = 2, then re-executes the committed schedule under increasingly
/// hostile conditions:
///   - no failures (the replay reproduces the committed timetable exactly);
///   - each single-processor crash;
///   - the adversarially worst pair of crashes (found exhaustively);
///   - a crash at mid-flight time (work finished before the crash survives).
/// Gantt charts show which replicas actually ran.
#include <cstdio>
#include <iostream>

#include "api/api.hpp"
#include "dag/generators.hpp"
#include "metrics/gantt.hpp"
#include "sim/resilience.hpp"

int main() {
  using namespace caft;

  CostSynthesisParams params;
  params.granularity = 1.0;
  const ftsched::Instance instance(stencil(4, 5, 90.0), Platform(6), params,
                                   /*cost_seed=*/17, ftsched::RunOptions{2});

  const ftsched::ScheduleResult result =
      ftsched::SchedulerRegistry::global().make("caft")->schedule(instance);
  const Schedule& sched = result.schedule;
  std::printf("stencil 4x5 on m=6, eps=2: committed latency %.1f "
              "(upper bound %.1f), %zu messages\n\n",
              result.makespan, result.upper_bound, result.messages);

  GanttOptions gantt;
  gantt.width = 90;

  // 1. Clean replay.
  const CrashResult clean =
      simulate_crashes(sched, instance.costs(), CrashScenario::none(6));
  std::printf("clean replay: latency %.1f (committed %.1f) — the replay is "
              "exact\n",
              clean.latency, result.makespan);

  // 2. Every single crash.
  std::printf("\nsingle crashes:\n");
  for (const ProcId p : instance.platform().all_procs()) {
    const CrashResult crash = simulate_crashes(sched, instance.costs(),
                                               CrashScenario::at_zero(6, {p}));
    std::printf("  P%u down: %s, latency %8.1f (%+.1f%% vs 0-crash)\n",
                p.value(), crash.success ? "survived" : "FAILED",
                crash.latency,
                100.0 * (crash.latency / result.makespan - 1.0));
  }

  // 3. The adversarial pair.
  const ResilienceReport report =
      check_resilience_exhaustive(sched, instance.costs(), 2);
  std::printf("\nall %zu crash pairs survive: %s (worst latency %.1f)\n",
              report.scenarios_tested, report.resistant ? "yes" : "NO",
              report.worst_latency);

  // Find and render the worst surviving pair.
  double worst = 0.0;
  CrashScenario worst_scenario = CrashScenario::none(6);
  for (std::size_t a = 0; a < 6; ++a)
    for (std::size_t b = a + 1; b < 6; ++b) {
      const CrashScenario scenario = CrashScenario::at_zero(
          6, {ProcId(static_cast<ProcId::value_type>(a)),
              ProcId(static_cast<ProcId::value_type>(b))});
      const CrashResult crash =
          simulate_crashes(sched, instance.costs(), scenario);
      if (crash.success && crash.latency > worst) {
        worst = crash.latency;
        worst_scenario = scenario;
      }
    }
  const CrashResult worst_result =
      simulate_crashes(sched, instance.costs(), worst_scenario);
  std::printf("\nworst surviving pair (latency %.1f):\n", worst_result.latency);
  std::cout << render_crash_gantt(sched, worst_result, worst_scenario, gantt);

  // 4. Crash at mid-flight: results computed before the crash stay usable.
  CrashScenario midflight = CrashScenario::none(6);
  midflight.set_crash_time(ProcId(0), result.makespan / 2.0);
  const CrashResult mid = simulate_crashes(sched, instance.costs(), midflight);
  std::printf("\nP0 dies at t=%.1f (mid-flight): %s, latency %.1f\n",
              result.makespan / 2.0, mid.success ? "survived" : "FAILED",
              mid.latency);
  return report.resistant && clean.success ? 0 : 1;
}
