/// Runtime scaling of the schedulers (google-benchmark): Theorem 5.1 gives
/// CAFT O(e·m·(ε+1)²·log(ε+1) + v·log ω); FTSA is O(e·m²+ v·log ω) per [4];
/// FTBAR is O(P·N³) per [10]. The task-count sweep exposes FTBAR's cubic
/// growth against the near-linear CAFT/FTSA; the ε and m sweeps exercise
/// the other factors.
#include <benchmark/benchmark.h>

#include "algo/caft.hpp"
#include "algo/ftbar.hpp"
#include "algo/ftsa.hpp"
#include "dag/generators.hpp"
#include "platform/cost_synthesis.hpp"
#include "sim/resilience.hpp"

namespace {

using namespace caft;

/// One reusable instance per (v, m) so setup cost stays out of the loop.
struct Instance {
  TaskGraph graph;
  Platform platform;
  CostModel costs;

  Instance(std::size_t tasks, std::size_t m, std::uint64_t seed)
      : platform(m), costs(make(tasks, m, seed)) {}

 private:
  CostModel make(std::size_t tasks, std::size_t m, std::uint64_t seed) {
    Rng rng(seed);
    RandomDagParams params;
    params.min_tasks = tasks;
    params.max_tasks = tasks;
    graph = random_dag(params, rng);
    (void)m;
    CostSynthesisParams cost_params;
    cost_params.granularity = 1.0;
    return synthesize_costs(graph, platform, cost_params, rng);
  }
};

void BM_CaftTasks(benchmark::State& state) {
  const auto tasks = static_cast<std::size_t>(state.range(0));
  Instance instance(tasks, 10, 1);
  CaftOptions options;
  options.base = SchedulerOptions{1, CommModelKind::kOnePort};
  for (auto _ : state)
    benchmark::DoNotOptimize(caft_schedule(instance.graph, instance.platform,
                                           instance.costs, options));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_CaftTasks)->RangeMultiplier(2)->Range(32, 512)->Complexity();

void BM_FtsaTasks(benchmark::State& state) {
  const auto tasks = static_cast<std::size_t>(state.range(0));
  Instance instance(tasks, 10, 1);
  const SchedulerOptions options{1, CommModelKind::kOnePort};
  for (auto _ : state)
    benchmark::DoNotOptimize(ftsa_schedule(instance.graph, instance.platform,
                                           instance.costs, options));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_FtsaTasks)->RangeMultiplier(2)->Range(32, 512)->Complexity();

void BM_FtbarTasks(benchmark::State& state) {
  const auto tasks = static_cast<std::size_t>(state.range(0));
  Instance instance(tasks, 10, 1);
  FtbarOptions options;
  options.base = SchedulerOptions{1, CommModelKind::kOnePort};
  for (auto _ : state)
    benchmark::DoNotOptimize(ftbar_schedule(instance.graph, instance.platform,
                                            instance.costs, options));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_FtbarTasks)->RangeMultiplier(2)->Range(32, 256)->Complexity();

void BM_CaftEps(benchmark::State& state) {
  const auto eps = static_cast<std::size_t>(state.range(0));
  Instance instance(100, 12, 2);
  CaftOptions options;
  options.base = SchedulerOptions{eps, CommModelKind::kOnePort};
  for (auto _ : state)
    benchmark::DoNotOptimize(caft_schedule(instance.graph, instance.platform,
                                           instance.costs, options));
}
BENCHMARK(BM_CaftEps)->DenseRange(0, 5, 1);

void BM_CaftProcs(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  Instance instance(100, m, 3);
  CaftOptions options;
  options.base = SchedulerOptions{1, CommModelKind::kOnePort};
  for (auto _ : state)
    benchmark::DoNotOptimize(caft_schedule(instance.graph, instance.platform,
                                           instance.costs, options));
}
BENCHMARK(BM_CaftProcs)->RangeMultiplier(2)->Range(4, 32);

void BM_CrashReplay(benchmark::State& state) {
  Instance instance(100, 10, 4);
  CaftOptions options;
  options.base = SchedulerOptions{2, CommModelKind::kOnePort};
  const Schedule sched = caft_schedule(instance.graph, instance.platform,
                                       instance.costs, options);
  Rng rng(5);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        simulate_random_crashes(sched, instance.costs, 2, rng));
}
BENCHMARK(BM_CrashReplay);

}  // namespace

BENCHMARK_MAIN();
