/// Message scaling on general random DAGs (Section 6's communication
/// analysis): FTSA and FTBAR commit up to e(ε+1)² messages, CAFT stays near
/// e(ε+1). Reports raw counts and the counts normalized by the linear
/// budget e(ε+1) across ε.
#include <iostream>

#include "algo/caft.hpp"
#include "algo/ftbar.hpp"
#include "algo/ftsa.hpp"
#include "common/table.hpp"
#include "dag/generators.hpp"
#include "exp/config.hpp"
#include "platform/cost_synthesis.hpp"

int main() {
  using namespace caft;
  const std::size_t reps = bench_reps_from_env(10);
  std::cout << "=== Message scaling: e(eps+1) vs e(eps+1)^2 (m=10, "
               "granularity 0.5, paper-protocol random DAGs) ===\n"
            << "reps per row: " << reps << "\n\n";

  Table table("average inter-processor messages",
              {"eps", "edges e", "e(eps+1)", "e(eps+1)^2", "CAFT", "FTSA",
               "FTBAR", "CAFT/linear", "FTSA/linear"});
  for (const std::size_t eps : {0u, 1u, 2u, 3u, 4u}) {
    double edges = 0.0, caft_msgs = 0.0, ftsa_msgs = 0.0, ftbar_msgs = 0.0;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      Rng rng(7 + rep);
      const TaskGraph g = random_dag(RandomDagParams{}, rng);
      const Platform platform(10);
      CostSynthesisParams params;
      params.granularity = 0.5;
      const CostModel costs = synthesize_costs(g, platform, params, rng);
      const SchedulerOptions options{eps, CommModelKind::kOnePort};
      CaftOptions caft_options;
      caft_options.base = options;
      FtbarOptions ftbar_options;
      ftbar_options.base = options;
      edges += static_cast<double>(g.edge_count());
      caft_msgs += static_cast<double>(
          caft_schedule(g, platform, costs, caft_options).message_count());
      ftsa_msgs += static_cast<double>(
          ftsa_schedule(g, platform, costs, options).message_count());
      ftbar_msgs += static_cast<double>(
          ftbar_schedule(g, platform, costs, ftbar_options).message_count());
    }
    const auto n = static_cast<double>(reps);
    edges /= n;
    caft_msgs /= n;
    ftsa_msgs /= n;
    ftbar_msgs /= n;
    const double linear = edges * static_cast<double>(eps + 1);
    table.add_row({static_cast<double>(eps), edges, linear,
                   linear * static_cast<double>(eps + 1), caft_msgs, ftsa_msgs,
                   ftbar_msgs, caft_msgs / linear, ftsa_msgs / linear});
  }
  table.print(std::cout, 2);
  std::cout << "\nExpected shape: CAFT/linear stays near 1 while FTSA/linear\n"
               "grows with eps (the quadratic replication, damped by the\n"
               "intra-processor rule).\n";
  table.save_csv("messages_scaling.csv");
  return 0;
}
