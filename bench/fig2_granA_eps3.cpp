/// Figure 2 of the paper: granularity sweep A, m = 10, ε = 3, 2 crashes.
#include "figure_main.hpp"

int main() {
  return caft::bench::run_figure_bench(
      caft::figure2(),
      "granularity A in [0.2, 2.0], m=10, eps=3, 2 crashes (paper Figure 2)");
}
