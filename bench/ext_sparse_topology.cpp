/// Extension (paper Section 7): sparse interconnection graphs with routing
/// tables. CAFT runs unchanged on rings, stars, meshes and random sparse
/// networks — messages occupy every link of their route, so long-distance
/// communication is scheduled "carefully" exactly as the paper proposes.
///
/// Fair comparison: execution times and edge volumes are synthesized ONCE
/// (against the clique at granularity 1.0) and held fixed; only the
/// interconnect and its per-link delays change. The reported ratio is the
/// raw latency against the clique's — multi-hop routes and shared links can
/// only add cost.
#include <iostream>

#include "algo/caft.hpp"
#include "common/table.hpp"
#include "dag/generators.hpp"
#include "exp/config.hpp"
#include "platform/cost_synthesis.hpp"

int main() {
  using namespace caft;
  const std::size_t reps = bench_reps_from_env(10);
  const std::size_t m = 16;
  std::cout << "=== Extension: sparse topologies with routing (m=16, eps=1, "
               "costs fixed across topologies) ===\n"
            << "reps per row: " << reps << "\n\n";

  struct Topo {
    const char* name;
    Topology topology;
  };
  Rng topo_rng(3);
  const Topo topologies[] = {
      {"clique", Topology::clique(m)},
      {"torus 4x4", Topology::torus(4, 4)},
      {"mesh 4x4", Topology::mesh(4, 4)},
      {"star", Topology::star(m)},
      {"ring", Topology::ring(m)},
      {"random deg~3", Topology::random_connected(m, 3.0, topo_rng)},
  };

  const std::size_t topo_count = sizeof(topologies) / sizeof(topologies[0]);
  std::vector<double> latency(topo_count, 0.0), messages(topo_count, 0.0);

  for (std::size_t rep = 0; rep < reps; ++rep) {
    Rng rng(31 + rep);
    const TaskGraph g = random_dag(RandomDagParams{}, rng);

    // Reference costs on the clique; every topology reuses the execution
    // matrix and draws its per-link delays from the paper's U[0.5, 1].
    const Platform clique(m);
    CostSynthesisParams params;
    params.granularity = 1.0;
    const CostModel reference = synthesize_costs(g, clique, params, rng);

    for (std::size_t ti = 0; ti < topo_count; ++ti) {
      const Platform platform(topologies[ti].topology);
      CostModel costs(g.task_count(), platform);
      for (const TaskId t : g.all_tasks())
        for (const ProcId p : platform.all_procs())
          costs.set_exec(t, p, reference.exec(t, p));
      Rng delay_rng(1000 + rep);  // identical delay stream per topology
      for (std::size_t l = 0; l < platform.topology().link_count(); ++l)
        costs.set_unit_delay(LinkId(static_cast<LinkId::value_type>(l)),
                             delay_rng.uniform(0.5, 1.0));

      CaftOptions options;
      options.base = SchedulerOptions{1, CommModelKind::kOnePort};
      const Schedule sched = caft_schedule(g, platform, costs, options);
      latency[ti] += sched.zero_crash_latency();
      messages[ti] += static_cast<double>(sched.message_count());
    }
  }

  Table table("CAFT on sparse interconnects (same work, different wires)",
              {"topology", "links", "avg hops", "latency", "messages",
               "latency vs clique"});
  for (std::size_t ti = 0; ti < topo_count; ++ti) {
    const Topology& topology = topologies[ti].topology;
    double hops = 0.0;
    std::size_t pairs = 0;
    for (std::size_t a = 0; a < m; ++a)
      for (std::size_t b = 0; b < m; ++b)
        if (a != b) {
          hops += static_cast<double>(
              topology.hop_count(ProcId(static_cast<ProcId::value_type>(a)),
                                 ProcId(static_cast<ProcId::value_type>(b))));
          ++pairs;
        }
    const auto n = static_cast<double>(reps);
    table.add_row({std::string(topologies[ti].name),
                   static_cast<double>(topology.link_count()),
                   hops / static_cast<double>(pairs), latency[ti] / n,
                   messages[ti] / n, latency[ti] / latency[0]});
  }
  table.print(std::cout, 2);
  std::cout << "\nExpected shape: the clique is fastest; latency inflates\n"
               "with hop count and link sharing (ring worst).\n";
  table.save_csv("ext_sparse_topology.csv");
  return 0;
}
