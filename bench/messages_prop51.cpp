/// Proposition 5.1: on fork / out-forest graphs CAFT commits at most
/// e(ε+1) inter-processor messages. This bench measures the actual counts
/// against the bound across graph shapes, ε and platform sizes, and also
/// reports FTSA on the same instances (its bound is e(ε+1)²).
#include <iostream>

#include "algo/caft.hpp"
#include "algo/ftsa.hpp"
#include "common/table.hpp"
#include "dag/generators.hpp"
#include "exp/config.hpp"
#include "platform/cost_synthesis.hpp"

namespace {

using namespace caft;

struct Row {
  std::string graph;
  std::size_t m;
  std::size_t eps;
  double edges = 0.0;
  double caft_msgs = 0.0;
  double ftsa_msgs = 0.0;
  std::size_t bound_violations = 0;
};

Row measure(const std::string& label, int family, std::size_t m,
            std::size_t eps, std::size_t reps) {
  Row row;
  row.graph = label;
  row.m = m;
  row.eps = eps;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    Rng rng(42 + rep);
    TaskGraph g;
    switch (family) {
      case 0: g = fork(30, 100.0); break;
      case 1: g = random_out_forest(60, 3, rng); break;
      case 2: g = chain(40, 100.0); break;
      default: g = random_out_forest(60, 1, rng); break;
    }
    Platform platform(m);
    CostSynthesisParams params;
    params.granularity = 1.0;
    const CostModel costs = synthesize_costs(g, platform, params, rng);
    const SchedulerOptions options{eps, CommModelKind::kOnePort};
    CaftOptions caft_options;
    caft_options.base = options;
    const Schedule caft = caft_schedule(g, platform, costs, caft_options);
    const Schedule ftsa = ftsa_schedule(g, platform, costs, options);
    row.edges += static_cast<double>(g.edge_count());
    row.caft_msgs += static_cast<double>(caft.message_count());
    row.ftsa_msgs += static_cast<double>(ftsa.message_count());
    if (caft.message_count() > g.edge_count() * (eps + 1))
      ++row.bound_violations;
  }
  const auto n = static_cast<double>(reps);
  row.edges /= n;
  row.caft_msgs /= n;
  row.ftsa_msgs /= n;
  return row;
}

}  // namespace

int main() {
  const std::size_t reps = caft::bench_reps_from_env(10);
  std::cout << "=== Proposition 5.1: CAFT message bound e(eps+1) on "
               "fork/out-forest graphs ===\n"
            << "reps per row: " << reps << "\n\n";

  Table table("messages vs the linear bound (averages)",
              {"graph", "m", "eps", "edges e", "bound e(eps+1)", "CAFT msgs",
               "FTSA msgs", "CAFT viol."});
  const struct {
    const char* label;
    int family;
  } families[] = {{"fork(30)", 0}, {"out-forest(60,3)", 1}, {"chain(40)", 2},
                  {"out-tree(60)", 3}};
  for (const auto& fam : families)
    for (const std::size_t m : {10u, 20u})
      for (const std::size_t eps : {1u, 3u, 5u}) {
        if (eps + 1 > m) continue;
        const Row row = measure(fam.label, fam.family, m, eps, reps);
        table.add_row({row.graph, static_cast<double>(row.m),
                       static_cast<double>(row.eps), row.edges,
                       row.edges * static_cast<double>(eps + 1), row.caft_msgs,
                       row.ftsa_msgs, static_cast<double>(row.bound_violations)});
      }
  table.print(std::cout, 1);
  std::cout << "\nExpected: the 'CAFT viol.' column is all zeros — the bound\n"
               "of Proposition 5.1 holds exactly on in-degree <= 1 graphs.\n";
  table.save_csv("messages_prop51.csv");
  return 0;
}
