/// Ablation: does contention-awareness matter? (The paper's core premise,
/// Sections 1 and 6.) For each instance we schedule twice — once under the
/// macro-dataflow model (contention-free decisions AND accounting) and once
/// under the one-port model — and report the normalized latencies side by
/// side. The macro-dataflow numbers are what the traditional literature
/// would promise; the one-port numbers are what a single-port network
/// actually delivers.
#include <iostream>

#include "algo/caft.hpp"
#include "algo/ftsa.hpp"
#include "common/table.hpp"
#include "dag/generators.hpp"
#include "exp/config.hpp"
#include "metrics/metrics.hpp"
#include "platform/cost_synthesis.hpp"

int main() {
  using namespace caft;
  const std::size_t reps = bench_reps_from_env(10);
  std::cout << "=== Ablation: macro-dataflow vs one-port (m=10, paper "
               "random DAGs) ===\n"
            << "reps per point: " << reps << "\n\n";

  for (const std::size_t eps : {1u, 3u}) {
    Table table("normalized latency, eps=" + std::to_string(eps),
                {"granularity", "FTSA macro", "FTSA one-port", "CAFT macro",
                 "CAFT one-port", "one-port penalty FTSA",
                 "one-port penalty CAFT"});
    for (const double granularity : {0.2, 0.5, 1.0, 2.0, 5.0}) {
      double ftsa_md = 0.0, ftsa_op = 0.0, caft_md = 0.0, caft_op = 0.0;
      for (std::size_t rep = 0; rep < reps; ++rep) {
        Rng rng(11 + rep);
        const TaskGraph g = random_dag(RandomDagParams{}, rng);
        const Platform platform(10);
        CostSynthesisParams params;
        params.granularity = granularity;
        const CostModel costs = synthesize_costs(g, platform, params, rng);
        const auto norm = [&](const Schedule& s) {
          return normalized_latency(s.zero_crash_latency(), g, costs);
        };
        CaftOptions caft_md_options, caft_op_options;
        caft_md_options.base = {eps, CommModelKind::kMacroDataflow};
        caft_op_options.base = {eps, CommModelKind::kOnePort};
        ftsa_md += norm(ftsa_schedule(g, platform, costs,
                                      {eps, CommModelKind::kMacroDataflow}));
        ftsa_op += norm(ftsa_schedule(g, platform, costs,
                                      {eps, CommModelKind::kOnePort}));
        caft_md += norm(caft_schedule(g, platform, costs, caft_md_options));
        caft_op += norm(caft_schedule(g, platform, costs, caft_op_options));
      }
      const auto n = static_cast<double>(reps);
      ftsa_md /= n;
      ftsa_op /= n;
      caft_md /= n;
      caft_op /= n;
      table.add_row({granularity, ftsa_md, ftsa_op, caft_md, caft_op,
                     ftsa_op / ftsa_md, caft_op / caft_md});
    }
    table.print(std::cout, 3);
    std::cout << '\n';
  }
  std::cout << "Expected shape: the one-port penalty (> 1) is largest at\n"
               "fine granularity and for the message-heavy FTSA — the\n"
               "paper's argument for contention-aware scheduling.\n";
  return 0;
}
