/// \file figure_main.hpp
/// Shared driver for the six figure benches: runs one ExperimentConfig at
/// the CAFT_BENCH_REPS repetition count (default below; the paper uses 60)
/// and prints the three panels plus the message table.
#pragma once

#include <cstdio>
#include <iostream>

#include "exp/config.hpp"
#include "exp/report.hpp"
#include "exp/runner.hpp"

namespace caft::bench {

/// Repetitions used when CAFT_BENCH_REPS is not set. Chosen so the whole
/// bench suite finishes in a few minutes on a laptop; set CAFT_BENCH_REPS=60
/// for the paper's exact protocol.
inline constexpr std::size_t kDefaultReps = 10;

inline int run_figure_bench(ExperimentConfig config, const char* blurb) {
  config.graphs_per_point = bench_reps_from_env(kDefaultReps);
  std::cout << "=== " << config.name << ": " << blurb << " ===\n"
            << "platform: m=" << config.proc_count << ", eps=" << config.eps
            << ", crashes=" << config.crashes
            << ", graphs/point=" << config.graphs_per_point
            << ", seed=" << config.seed << "\n"
            << "(set CAFT_BENCH_REPS=60 for the paper's full protocol)\n\n";
  const auto points = run_experiment(config);
  report_figure(std::cout, config, points, config.name);
  std::cout << "CSV written to " << config.name << "_{a,b,c,msgs}.csv\n";
  return 0;
}

}  // namespace caft::bench
