/// Ablation: the one-to-one mapping procedure (Algorithm 5.2) on/off.
/// With it disabled every replica receives from all ε+1 copies of each
/// predecessor (locked receive-from-all) — isolating how much of CAFT's
/// advantage comes from the single-sender channels themselves.
#include <iostream>

#include "algo/caft.hpp"
#include "algo/ftsa.hpp"
#include "common/table.hpp"
#include "dag/generators.hpp"
#include "exp/config.hpp"
#include "metrics/metrics.hpp"
#include "platform/cost_synthesis.hpp"

int main() {
  using namespace caft;
  const std::size_t reps = bench_reps_from_env(10);
  std::cout << "=== Ablation: Algorithm 5.2 (one-to-one mapping) on/off "
               "(m=10, granularity 0.5) ===\n"
            << "reps per row: " << reps << "\n\n";

  Table table("normalized latency and messages",
              {"eps", "CAFT latency", "CAFT no-1:1 latency", "FTSA latency",
               "CAFT msgs", "CAFT no-1:1 msgs", "FTSA msgs",
               "one-to-one commits", "per-edge fallbacks"});
  for (const std::size_t eps : {1u, 2u, 3u}) {
    double lat_on = 0.0, lat_off = 0.0, lat_ftsa = 0.0;
    double msg_on = 0.0, msg_off = 0.0, msg_ftsa = 0.0;
    double o2o = 0.0, pef = 0.0;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      Rng rng(23 + rep);
      const TaskGraph g = random_dag(RandomDagParams{}, rng);
      const Platform platform(10);
      CostSynthesisParams params;
      params.granularity = 0.5;
      const CostModel costs = synthesize_costs(g, platform, params, rng);
      const SchedulerOptions options{eps, CommModelKind::kOnePort};
      CaftOptions on, off;
      on.base = options;
      off.base = options;
      off.one_to_one = false;
      CaftRunStats stats;
      const Schedule a = caft_schedule(g, platform, costs, on, &stats);
      const Schedule b = caft_schedule(g, platform, costs, off);
      const Schedule f = ftsa_schedule(g, platform, costs, options);
      lat_on += normalized_latency(a.zero_crash_latency(), g, costs);
      lat_off += normalized_latency(b.zero_crash_latency(), g, costs);
      lat_ftsa += normalized_latency(f.zero_crash_latency(), g, costs);
      msg_on += static_cast<double>(a.message_count());
      msg_off += static_cast<double>(b.message_count());
      msg_ftsa += static_cast<double>(f.message_count());
      o2o += static_cast<double>(stats.one_to_one_commits);
      pef += static_cast<double>(stats.per_edge_fallbacks);
    }
    const auto n = static_cast<double>(reps);
    table.add_row({static_cast<double>(eps), lat_on / n, lat_off / n,
                   lat_ftsa / n, msg_on / n, msg_off / n, msg_ftsa / n,
                   o2o / n, pef / n});
  }
  table.print(std::cout, 2);
  std::cout << "\nExpected shape: disabling the one-to-one channels pushes\n"
               "CAFT's messages and latency to FTSA's level — the procedure\n"
               "is where the paper's gains come from.\n";
  table.save_csv("ablation_one_to_one.csv");
  return 0;
}
