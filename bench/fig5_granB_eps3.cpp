/// Figure 5 of the paper: granularity sweep B, m = 10, ε = 3, 2 crashes.
#include "figure_main.hpp"

int main() {
  return caft::bench::run_figure_bench(
      caft::figure5(),
      "granularity B in [1, 10], m=10, eps=3, 2 crashes (paper Figure 5)");
}
