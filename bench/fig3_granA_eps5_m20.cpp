/// Figure 3 of the paper: granularity sweep A, m = 20, ε = 5, 3 crashes.
#include "figure_main.hpp"

int main() {
  return caft::bench::run_figure_bench(
      caft::figure3(),
      "granularity A in [0.2, 2.0], m=20, eps=5, 3 crashes (paper Figure 3)");
}
