/// Figure 6 of the paper: granularity sweep B, m = 20, ε = 5, 3 crashes.
#include "figure_main.hpp"

int main() {
  return caft::bench::run_figure_bench(
      caft::figure6(),
      "granularity B in [1, 10], m=20, eps=5, 3 crashes (paper Figure 6)");
}
