/// Campaign executor throughput: replays/sec of the Monte-Carlo
/// fault-injection campaign versus worker-thread count on a 50-task CAFT
/// schedule (m=10, eps=1), A/B-ing the two replay engines:
///
///   --engine naive        simulate_crashes from t=0 for every scenario
///   --engine incremental  prefix-cached ReplayEngine
///   --engine both         (default) run both and report the speedup
///
/// Two workloads are swept: the paper's uniform-k sampler (k processors
/// dead from t=0 — no usable fault-free prefix, so the incremental engine
/// wins on template reuse alone) and a crash-window sampler over the
/// schedule horizon (positive crash times — prefix snapshots kick in).
///
/// Every (engine, thread count) cell must produce the bit-for-bit
/// identical summary; any mismatch fails the bench (exit 1). This is the
/// acceptance gate for the determinism contract of sim/replay_engine.hpp.
///
/// CAFT_BENCH_REPS scales the replay count (default 2000). Thread counts
/// swept: 1, 2, 4, 8, and the hardware concurrency when larger.
#include <chrono>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "algo/caft.hpp"
#include "campaign/campaign.hpp"
#include "campaign/scenario_sampler.hpp"
#include "common/cli_args.hpp"
#include "common/table.hpp"
#include "dag/generators.hpp"
#include "exp/config.hpp"
#include "platform/cost_synthesis.hpp"

namespace {

using namespace caft;
using Clock = std::chrono::steady_clock;

/// Bit-for-bit equality of everything a campaign summary reports.
bool summaries_identical(const CampaignSummary& a, const CampaignSummary& b) {
  if (a.replays != b.replays || a.successes != b.successes ||
      a.replays_within_eps != b.replays_within_eps ||
      a.successes_within_eps != b.successes_within_eps ||
      a.max_failed != b.max_failed ||
      a.order_relaxations != b.order_relaxations ||
      a.order_deadlocks != b.order_deadlocks)
    return false;
  if (a.latency.mean() != b.latency.mean() ||
      a.latency.min() != b.latency.min() ||
      a.latency.max() != b.latency.max() ||
      a.latency.stddev() != b.latency.stddev() ||
      a.delivered_messages.mean() != b.delivered_messages.mean())
    return false;
  if (a.latency_quantiles.size() != b.latency_quantiles.size()) return false;
  for (std::size_t i = 0; i < a.latency_quantiles.size(); ++i)
    if (a.latency_quantiles[i].value != b.latency_quantiles[i].value)
      return false;
  return true;
}

const char* engine_name(CampaignEngine engine) {
  return engine == CampaignEngine::kIncremental ? "incremental" : "naive";
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const std::string engine_arg = args.get("engine", "both");
  std::vector<CampaignEngine> engines;
  if (engine_arg == "naive" || engine_arg == "both")
    engines.push_back(CampaignEngine::kNaive);
  if (engine_arg == "incremental" || engine_arg == "both")
    engines.push_back(CampaignEngine::kIncremental);
  if (engines.empty()) {
    std::cerr << "unknown --engine '" << engine_arg
              << "' (naive|incremental|both)\n";
    return 2;
  }

  const std::size_t replays = bench_reps_from_env(200) * 10;

  // 50-task instance at granularity 1, m = 10, CAFT with eps = 1.
  Rng rng(7);
  RandomDagParams dag;
  dag.min_tasks = 50;
  dag.max_tasks = 50;
  const TaskGraph graph = random_dag(dag, rng);
  const Platform platform(10);
  CostSynthesisParams cost_params;
  cost_params.granularity = 1.0;
  const CostModel costs = synthesize_costs(graph, platform, cost_params, rng);
  CaftOptions options;
  options.base = SchedulerOptions{1, CommModelKind::kOnePort};
  const Schedule schedule = caft_schedule(graph, platform, costs, options);

  // Workload A: the paper's model — k=1 dead from t=0 (no fault-free
  // prefix to reuse). Workload B: crashes in the first half of the
  // committed horizon (prefix snapshots shorten every replay).
  const UniformKSampler uniform_sampler(10, 1);
  const CrashWindowSampler window_sampler(10, 2, 0.0,
                                          schedule.horizon() * 0.5);
  struct Workload {
    const char* label;
    const ScenarioSampler* sampler;
  };
  const std::vector<Workload> workloads = {
      {"uniform-k", &uniform_sampler},
      {"crash-window", &window_sampler},
  };

  std::cout << "=== campaign throughput: " << replays
            << " replays of a 50-task CAFT schedule (m=10, eps=1) ===\n"
            << "hardware concurrency: "
            << std::thread::hardware_concurrency() << "\n\n";

  std::vector<std::size_t> thread_counts = {1, 2, 4, 8};
  const std::size_t hw = std::thread::hardware_concurrency();
  if (hw > 8) thread_counts.push_back(hw);

  bool deterministic = true;
  bool speedup_ok = true;
  for (const Workload& workload : workloads) {
    Table table(std::string("replays/sec vs threads — ") + workload.label,
                {"threads", "engine", "seconds", "replays_per_sec",
                 "speedup_vs_naive"});
    // Every (engine, thread count) cell is compared against the first cell
    // run — one shared reference, so engines cross-check each other too.
    std::unique_ptr<CampaignSummary> reference;
    for (const std::size_t threads : thread_counts) {
      double naive_rate = 0.0;
      for (const CampaignEngine engine : engines) {
        CampaignOptions campaign;
        campaign.replays = replays;
        campaign.threads = threads;
        campaign.engine = engine;
        const auto start = Clock::now();
        const CampaignSummary summary =
            run_campaign(schedule, costs, *workload.sampler, campaign);
        const double seconds =
            std::chrono::duration<double>(Clock::now() - start).count();
        const double rate = static_cast<double>(replays) / seconds;
        if (engine == CampaignEngine::kNaive) naive_rate = rate;
        if (reference == nullptr) {
          reference = std::make_unique<CampaignSummary>(summary);
        } else if (!summaries_identical(summary, *reference)) {
          deterministic = false;
          std::cerr << "MISMATCH: " << workload.label << " engine "
                    << engine_name(engine) << " at " << threads
                    << " threads diverged from the reference summary\n";
        }
        // The speedup column only means something when the naive baseline
        // ran in this sweep; single-engine runs print "n/a" instead of a
        // fabricated 1.0.
        Cell speedup_cell = std::string("n/a");
        if (naive_rate > 0.0) {
          const double speedup = rate / naive_rate;
          speedup_cell = speedup;
          if (engine == CampaignEngine::kIncremental && threads == 8 &&
              speedup < 2.0)
            speedup_ok = false;
        }
        table.add_row({static_cast<double>(threads),
                       std::string(engine_name(engine)), seconds, rate,
                       speedup_cell});
      }
    }
    table.print(std::cout, 3);
    std::cout << "\n";
  }

  std::cout << "summaries bit-for-bit identical across engines and thread "
               "counts: "
            << (deterministic ? "yes" : "NO") << "\n";
  if (engines.size() == 2)
    std::cout << "incremental >= 2x naive at 8 threads: "
              << (speedup_ok ? "yes" : "NO") << "\n";
  return deterministic ? 0 : 1;
}
