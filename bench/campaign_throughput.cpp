/// Campaign executor throughput: replays/sec of the Monte-Carlo
/// fault-injection campaign versus worker-thread count on a 50-task CAFT
/// schedule (m=10, eps=1), A/B-ing the replay engines and memo placements:
///
///   --engine naive        simulate_crashes from t=0 for every scenario
///   --engine incremental  prefix-cached ReplayEngine
///   --engine both         (default) run both and report the speedup
///
/// The bench runs through the ftsched:: facade: the schedule comes from
/// SchedulerRegistry::make("caft"), and every cell is one ftsched::Session
/// (the execution policy — threads, engine, memo placement — is exactly
/// what a Session owns) evaluating the same pre-built schedule.
///
/// The incremental engine runs twice per cell: once with the per-worker
/// Scratch memo (--memo scratch) and once with the campaign-wide sharded
/// SharedReplayMemo (--memo shared), so the table shows what sharing the
/// memo across threads buys on top of prefix caching.
///
/// Three workloads are swept: the paper's uniform-k sampler (k processors
/// dead from t=0 — the memo-friendly workload: only C(m, k) masks exist),
/// a crash-window sampler over half the schedule horizon (positive crash
/// times — prefix snapshots and, here, adaptive snapshot spacing kick in),
/// and the same crash-window workload with θ-quantization enabled
/// (--theta-buckets equivalent; shared memo hits on bucketed keys).
///
/// Every *exact* (engine, memo, thread count) cell must produce the
/// bit-for-bit identical summary; any mismatch fails the bench (exit 1).
/// The θ-quantized cells are a deliberate approximation, so they are held
/// to their own gate: identical summaries across all thread counts (the
/// approximation must be deterministic), plus a reported hit rate and
/// drift versus the exact reference. This is the acceptance gate for the
/// determinism contract of sim/replay_engine.hpp.
///
/// CAFT_BENCH_REPS scales the replay count (default 2000). Thread counts
/// swept: 1, 2, 4, 8, and the hardware concurrency when larger.
///
/// --json-out FILE additionally writes every swept cell as one machine-
/// readable JSON document (schema "caft-bench-campaign/v1", documented in
/// README "Campaign bench artifact") — CI uploads it per commit so the
/// performance trajectory accumulates.
///
/// When a worker binary is named (--subprocess-cli PATH, or the
/// CAFT_CAMPAIGN_CLI environment variable the subprocess tests already
/// use), a fourth sweep runs the uniform-k workload through the
/// subprocess backend's streaming coordinator at 1/2/4 workers: its cells
/// carry `fold_window_peak` — the coordinator's peak count of buffered
/// blocks — so the bench trajectory tracks coordinator memory as well as
/// throughput, and its summaries must stay byte-identical to in-process.
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/api.hpp"
#include "campaign/stats.hpp"
#include "common/build_info.hpp"
#include "common/cli_args.hpp"
#include "common/table.hpp"
#include "dag/generators.hpp"
#include "exp/config.hpp"
#include "platform/cost_synthesis.hpp"

namespace {

using namespace caft;
using Clock = std::chrono::steady_clock;

/// Bit-for-bit equality of everything a campaign summary reports.
bool summaries_identical(const CampaignSummary& a, const CampaignSummary& b) {
  if (a.replays != b.replays || a.successes != b.successes ||
      a.replays_within_eps != b.replays_within_eps ||
      a.successes_within_eps != b.successes_within_eps ||
      a.max_failed != b.max_failed ||
      a.order_relaxations != b.order_relaxations ||
      a.order_deadlocks != b.order_deadlocks)
    return false;
  if (a.latency.mean() != b.latency.mean() ||
      a.latency.min() != b.latency.min() ||
      a.latency.max() != b.latency.max() ||
      a.latency.stddev() != b.latency.stddev() ||
      a.delivered_messages.mean() != b.delivered_messages.mean())
    return false;
  if (a.latency_quantiles.size() != b.latency_quantiles.size()) return false;
  for (std::size_t i = 0; i < a.latency_quantiles.size(); ++i)
    if (a.latency_quantiles[i].value != b.latency_quantiles[i].value)
      return false;
  return true;
}

/// One engine/memo configuration of a sweep cell.
struct Variant {
  const char* engine;  ///< "naive" | "incremental"
  const char* memo;    ///< "-" | "scratch" | "shared"
};

double hit_rate(const CampaignTelemetry& telemetry) {
  return telemetry.memo_lookups == 0
             ? 0.0
             : static_cast<double>(telemetry.memo_hits) /
                   static_cast<double>(telemetry.memo_lookups);
}

/// One swept (workload, engine, memo, threads) cell, for --json-out.
struct BenchCell {
  std::string workload;
  std::string engine;
  std::string memo;
  std::size_t threads = 0;
  double seconds = 0.0;
  double replays_per_sec = 0.0;
  double memo_hit_rate = 0.0;
  /// Streaming-coordinator memory: peak blocks buffered past the fold
  /// frontier (subprocess cells only; 0 for in-process cells, whose wave
  /// buffer is bounded by SessionOptions::block by construction).
  std::size_t fold_window_peak = 0;
};

/// Writes the BENCH_campaign.json artifact (schema caft-bench-campaign/v1;
/// see README "Campaign bench artifact"). Hand-rolled JSON: flat schema,
/// full double precision, no library dependency.
bool write_bench_json(const std::string& path, std::size_t replays,
                      const std::vector<BenchCell>& cells,
                      bool deterministic, bool quantized_deterministic) {
  std::ofstream out(path);
  if (!out) return false;
  out << std::setprecision(17);
  const caft::BuildInfo& build = caft::build_info();
  out << "{\n"
      << "  \"schema\": \"caft-bench-campaign/v1\",\n"
      << "  \"build\": {\"git_sha\": \"" << build.git_sha
      << "\", \"compiler\": \"" << build.compiler << "\", \"build_type\": \""
      << build.build_type << "\"},\n"
      << "  \"replays\": " << replays << ",\n"
      << "  \"hardware_concurrency\": "
      << std::thread::hardware_concurrency() << ",\n"
      << "  \"cells\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const BenchCell& cell = cells[i];
    out << "    {\"workload\": \"" << cell.workload << "\", \"engine\": \""
        << cell.engine << "\", \"memo\": \"" << cell.memo
        << "\", \"threads\": " << cell.threads << ", \"seconds\": "
        << cell.seconds << ", \"replays_per_sec\": " << cell.replays_per_sec
        << ", \"memo_hit_rate\": " << cell.memo_hit_rate
        << ", \"fold_window_peak\": " << cell.fold_window_peak << "}"
        << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  out << "  ],\n"
      << "  \"gates\": {\"deterministic\": "
      << (deterministic ? "true" : "false")
      << ", \"quantized_deterministic\": "
      << (quantized_deterministic ? "true" : "false") << "}\n"
      << "}\n";
  return static_cast<bool>(out);
}

}  // namespace

int run_bench(int argc, char** argv);

int main(int argc, char** argv) {
  // get_choice / the strict numeric getters throw CheckError on malformed
  // flags; report it as a usage error instead of std::terminate.
  try {
    return run_bench(argc, argv);
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 2;
  }
}

int run_bench(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const std::string engine_arg =
      args.get_choice("engine", "both", {"naive", "incremental", "both"});
  std::vector<Variant> variants;
  if (engine_arg == "naive" || engine_arg == "both")
    variants.push_back({"naive", "-"});
  if (engine_arg == "incremental" || engine_arg == "both") {
    variants.push_back({"incremental", "scratch"});
    variants.push_back({"incremental", "shared"});
  }

  const std::size_t replays = bench_reps_from_env(200) * 10;

  // 50-task instance at granularity 1, m = 10, CAFT with eps = 1 — the
  // schedule every cell replays, produced once through the registry.
  Rng rng(7);
  RandomDagParams dag;
  dag.min_tasks = 50;
  dag.max_tasks = 50;
  TaskGraph graph = random_dag(dag, rng);
  CostSynthesisParams cost_params;
  cost_params.granularity = 1.0;
  const ftsched::Instance instance(std::move(graph), Platform(10), cost_params,
                                   rng, ftsched::RunOptions{/*eps=*/1});
  const ftsched::ScheduleResult schedule =
      ftsched::SchedulerRegistry::global().make("caft")->schedule(instance);
  const double horizon = schedule.schedule.horizon();

  // Workload A: the paper's model — k=2 dead from t=0: C(10, 2) = 45 masks,
  // the memo-friendly regime where a shared memo computes each mask once
  // for the whole campaign instead of once per worker. Workload B: crashes
  // in the first half of the committed horizon (prefix snapshots, placed
  // adaptively from the sampler's θ quantiles, shorten every replay).
  struct Workload {
    const char* label;
    ftsched::SamplerSpec sampler;
  };
  const std::vector<Workload> workloads = {
      {"uniform-k", ftsched::SamplerSpec::uniform_k(2)},
      {"crash-window",
       ftsched::SamplerSpec::window(2, 0.0, horizon * 0.5)},
  };

  std::cout << "=== campaign throughput: " << replays
            << " replays of a 50-task CAFT schedule (m=10, eps=1) ===\n"
            << "hardware concurrency: "
            << std::thread::hardware_concurrency() << "\n\n";

  std::vector<std::size_t> thread_counts = {1, 2, 4, 8};
  const std::size_t hw = std::thread::hardware_concurrency();
  if (hw > 8) thread_counts.push_back(hw);

  bool deterministic = true;
  bool speedup_ok = true;
  bool shared_ok = true;
  std::vector<BenchCell> cells;
  for (const Workload& workload : workloads) {
    Table table(std::string("replays/sec vs threads — ") + workload.label,
                {"threads", "engine", "memo", "seconds", "replays_per_sec",
                 "speedup_vs_naive", "memo_hit_rate"});
    ftsched::CampaignSpec spec;
    spec.sampler = workload.sampler;
    spec.replays = replays;
    // Every (engine, memo, thread count) cell is compared against the first
    // cell run — one shared reference, so engines and memo placements
    // cross-check each other too.
    std::unique_ptr<CampaignSummary> reference;
    for (const std::size_t threads : thread_counts) {
      double naive_rate = 0.0;
      double scratch_rate = 0.0;
      for (const Variant& variant : variants) {
        ftsched::SessionOptions session_options;
        session_options.threads = threads;
        session_options.engine = std::string(variant.engine) == "naive"
                                     ? CampaignEngine::kNaive
                                     : CampaignEngine::kIncremental;
        session_options.memo = std::string(variant.memo) == "shared"
                                   ? CampaignMemo::kShared
                                   : CampaignMemo::kScratch;
        const ftsched::Session session(session_options);
        const auto start = Clock::now();
        const ftsched::CampaignRun run =
            session.evaluate_schedule(instance, schedule, spec);
        const double seconds =
            std::chrono::duration<double>(Clock::now() - start).count();
        const double rate = static_cast<double>(replays) / seconds;
        if (session_options.engine == CampaignEngine::kNaive)
          naive_rate = rate;
        if (session_options.engine == CampaignEngine::kIncremental) {
          if (session_options.memo == CampaignMemo::kScratch)
            scratch_rate = rate;
          // Reported (not exit-code-gated, like the naive-speedup line:
          // raw timings are too noisy on shared CI runners): sharing the
          // memo should not cost throughput where it matters — 4+ workers
          // on the memo-friendly mask space.
          else if (std::string(workload.label) == "uniform-k" &&
                   threads >= 4 && rate < scratch_rate)
            shared_ok = false;
        }
        if (reference == nullptr) {
          reference = std::make_unique<CampaignSummary>(run.summary);
        } else if (!summaries_identical(run.summary, *reference)) {
          deterministic = false;
          std::cerr << "MISMATCH: " << workload.label << " engine "
                    << variant.engine << " memo " << variant.memo << " at "
                    << threads
                    << " threads diverged from the reference summary\n";
        }
        // The speedup column only means something when the naive baseline
        // ran in this sweep; single-engine runs print "n/a" instead of a
        // fabricated 1.0.
        Cell speedup_cell = std::string("n/a");
        if (naive_rate > 0.0) {
          const double speedup = rate / naive_rate;
          speedup_cell = speedup;
          if (session_options.engine == CampaignEngine::kIncremental &&
              threads == 8 && speedup < 2.0)
            speedup_ok = false;
        }
        table.add_row({static_cast<double>(threads),
                       std::string(variant.engine),
                       std::string(variant.memo), seconds, rate,
                       speedup_cell, hit_rate(run.telemetry)});
        cells.push_back({workload.label, variant.engine, variant.memo,
                         threads, seconds, rate, hit_rate(run.telemetry)});
      }
    }
    table.print(std::cout, 3);
    std::cout << "\n";
  }

  // --- θ-quantized crash-window workload: shared memo with bucketed keys.
  // k=1 over 32 buckets of the half-horizon window gives a keyspace of
  // m × 32 = 320, small enough for the memo to start paying within one
  // bench run. The quantized summary is an approximation of the exact one,
  // so it is held to its own determinism gate (identical across thread
  // counts) and reported as hit rate + drift, not compared bit-for-bit to
  // exact. Skipped for --engine naive: the whole block measures the
  // incremental engine.
  bool quantized_deterministic = true;
  double quantized_hit_rate = 0.0;
  if (engine_arg != "naive") {
    ftsched::CampaignSpec spec;
    spec.sampler = ftsched::SamplerSpec::window(1, 0.0, horizon * 0.5);
    spec.replays = replays;
    {
      ftsched::SessionOptions exact_options;
      exact_options.threads = 1;
      const ftsched::Session exact_session(exact_options);
      const CampaignSummary exact =
          exact_session.evaluate_schedule(instance, schedule, spec).summary;

      // 32 buckets over the half-horizon window = horizon / 64.
      ftsched::CampaignSpec quantized = spec;
      quantized.theta_buckets = 64;

      Table table("θ-quantized shared memo — crash-window k=1, 32 buckets",
                  {"threads", "seconds", "replays_per_sec", "memo_hit_rate",
                   "success_drift", "latency_mean_drift"});
      std::unique_ptr<CampaignSummary> reference;
      for (const std::size_t threads : thread_counts) {
        ftsched::SessionOptions session_options;
        session_options.threads = threads;
        session_options.memo = CampaignMemo::kShared;
        const ftsched::Session session(session_options);
        const auto start = Clock::now();
        const ftsched::CampaignRun run =
            session.evaluate_schedule(instance, schedule, quantized);
        const double seconds =
            std::chrono::duration<double>(Clock::now() - start).count();
        if (reference == nullptr)
          reference = std::make_unique<CampaignSummary>(run.summary);
        else if (!summaries_identical(run.summary, *reference)) {
          quantized_deterministic = false;
          std::cerr << "MISMATCH: quantized summary at " << threads
                    << " threads diverged\n";
        }
        quantized_hit_rate =
            std::max(quantized_hit_rate, hit_rate(run.telemetry));
        cells.push_back({"crash-window-quantized", "incremental", "shared",
                         threads, seconds,
                         static_cast<double>(replays) / seconds,
                         hit_rate(run.telemetry)});
        table.add_row(
            {static_cast<double>(threads), seconds,
             static_cast<double>(replays) / seconds, hit_rate(run.telemetry),
             static_cast<double>(run.summary.successes) -
                 static_cast<double>(exact.successes),
             run.summary.latency.mean() - exact.latency.mean()});
      }
      table.print(std::cout, 3);
      std::cout << "\n";
    }
  }

  // --- Subprocess streaming coordinator: uniform-k fanned out to worker
  // processes, tracking the coordinator's peak buffered blocks
  // (fold_window_peak) alongside throughput. Only runs when a worker
  // binary is named — the bench cannot assume campaign_cli's location —
  // and holds the subprocess summaries to the same byte-identity gate as
  // every other exact cell (folded into `deterministic`).
  std::string worker_cli = args.get("subprocess-cli");
  if (worker_cli.empty())
    if (const char* env_cli = std::getenv("CAFT_CAMPAIGN_CLI"))
      worker_cli = env_cli;
  if (!worker_cli.empty()) {
    ftsched::CampaignSpec spec;
    spec.sampler = ftsched::SamplerSpec::uniform_k(2);
    spec.replays = replays;

    ftsched::SessionOptions reference_options;
    reference_options.threads = 1;
    const CampaignSummary reference =
        ftsched::Session(reference_options)
            .evaluate_schedule(instance, schedule, spec)
            .summary;

    Table table("subprocess streaming coordinator — uniform-k",
                {"workers", "seconds", "replays_per_sec",
                 "fold_window_peak"});
    for (const std::size_t workers : {std::size_t{1}, std::size_t{2},
                                      std::size_t{4}}) {
      ftsched::SessionOptions session_options;
      session_options.exec =
          ftsched::ExecutionPolicy::subprocess(worker_cli, workers);
      const ftsched::Session session(session_options);
      const auto start = Clock::now();
      const ftsched::CampaignRun run =
          session.evaluate_schedule(instance, schedule, spec);
      const double seconds =
          std::chrono::duration<double>(Clock::now() - start).count();
      if (!summaries_identical(run.summary, reference)) {
        deterministic = false;
        std::cerr << "MISMATCH: subprocess summary at " << workers
                  << " worker(s) diverged from the in-process summary\n";
      }
      table.add_row({static_cast<double>(workers), seconds,
                     static_cast<double>(replays) / seconds,
                     static_cast<double>(run.telemetry.fold_window_peak)});
      cells.push_back({"uniform-k", "subprocess", "shared", workers, seconds,
                       static_cast<double>(replays) / seconds,
                       hit_rate(run.telemetry),
                       run.telemetry.fold_window_peak});
    }
    table.print(std::cout, 3);
    std::cout << "\n";
  }

  std::cout << "summaries bit-for-bit identical across engines, memo "
               "placements and thread counts: "
            << (deterministic ? "yes" : "NO") << "\n";
  if (engine_arg != "naive")
    std::cout << "quantized summaries identical across thread counts: "
              << (quantized_deterministic ? "yes" : "NO") << "\n"
              << "quantized memo hit rate (crash-window k=1, 32 buckets): "
              << quantized_hit_rate << "\n";
  if (engine_arg == "both")
    std::cout << "incremental >= 2x naive at 8 threads: "
              << (speedup_ok ? "yes" : "NO") << "\n";
  if (engine_arg != "naive")
    std::cout << "shared memo >= scratch memo at 4+ threads (uniform-k): "
              << (shared_ok ? "yes" : "NO") << "\n";

  if (args.has("json-out")) {
    const std::string path = args.get("json-out");
    if (!write_bench_json(path, replays, cells, deterministic,
                          quantized_deterministic)) {
      std::cerr << "error: could not write " << path << "\n";
      return 1;
    }
    std::cout << "bench cells written to " << path << "\n";
  }
  return deterministic && quantized_deterministic ? 0 : 1;
}
