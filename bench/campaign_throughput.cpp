/// Campaign executor throughput: replays/sec of the Monte-Carlo
/// fault-injection campaign versus worker-thread count on a 50-task
/// instance, plus a determinism cross-check (every thread count must
/// produce the identical summary).
///
/// CAFT_BENCH_REPS scales the replay count (default 2000). Thread counts
/// swept: 1, 2, 4, and the hardware concurrency when larger.
#include <chrono>
#include <iostream>
#include <thread>
#include <vector>

#include "algo/caft.hpp"
#include "campaign/campaign.hpp"
#include "campaign/scenario_sampler.hpp"
#include "common/table.hpp"
#include "dag/generators.hpp"
#include "exp/config.hpp"
#include "platform/cost_synthesis.hpp"

namespace {

using namespace caft;
using Clock = std::chrono::steady_clock;

/// Bit-for-bit equality of everything a campaign summary reports.
bool summaries_identical(const CampaignSummary& a, const CampaignSummary& b) {
  if (a.replays != b.replays || a.successes != b.successes ||
      a.replays_within_eps != b.replays_within_eps ||
      a.successes_within_eps != b.successes_within_eps ||
      a.max_failed != b.max_failed ||
      a.order_relaxations != b.order_relaxations ||
      a.order_deadlocks != b.order_deadlocks)
    return false;
  if (a.latency.mean() != b.latency.mean() ||
      a.latency.min() != b.latency.min() ||
      a.latency.max() != b.latency.max() ||
      a.latency.stddev() != b.latency.stddev() ||
      a.delivered_messages.mean() != b.delivered_messages.mean())
    return false;
  if (a.latency_quantiles.size() != b.latency_quantiles.size()) return false;
  for (std::size_t i = 0; i < a.latency_quantiles.size(); ++i)
    if (a.latency_quantiles[i].value != b.latency_quantiles[i].value)
      return false;
  return true;
}

}  // namespace

int main() {
  const std::size_t replays = bench_reps_from_env(200) * 10;

  // 50-task instance at granularity 1, m = 10, CAFT with eps = 1.
  Rng rng(7);
  RandomDagParams dag;
  dag.min_tasks = 50;
  dag.max_tasks = 50;
  const TaskGraph graph = random_dag(dag, rng);
  const Platform platform(10);
  CostSynthesisParams cost_params;
  cost_params.granularity = 1.0;
  const CostModel costs = synthesize_costs(graph, platform, cost_params, rng);
  CaftOptions options;
  options.base = SchedulerOptions{1, CommModelKind::kOnePort};
  const Schedule schedule = caft_schedule(graph, platform, costs, options);
  const UniformKSampler sampler(10, 1);

  std::cout << "=== campaign throughput: " << replays
            << " replays of a 50-task CAFT schedule (m=10, eps=1) ===\n"
            << "hardware concurrency: "
            << std::thread::hardware_concurrency() << "\n\n";

  std::vector<std::size_t> thread_counts = {1, 2, 4};
  const std::size_t hw = std::thread::hardware_concurrency();
  if (hw > 4) thread_counts.push_back(hw);

  Table table("campaign replays/sec vs threads",
              {"threads", "seconds", "replays_per_sec", "speedup_vs_1"});
  double base_rate = 0.0;
  CampaignSummary reference;
  bool deterministic = true;
  for (const std::size_t threads : thread_counts) {
    CampaignOptions campaign;
    campaign.replays = replays;
    campaign.threads = threads;
    const auto start = Clock::now();
    const CampaignSummary summary =
        run_campaign(schedule, costs, sampler, campaign);
    const double seconds =
        std::chrono::duration<double>(Clock::now() - start).count();
    const double rate = static_cast<double>(replays) / seconds;
    if (threads == 1) {
      base_rate = rate;
      reference = summary;
    } else if (!summaries_identical(summary, reference)) {
      deterministic = false;
    }
    table.add_row({static_cast<double>(threads), seconds, rate,
                   base_rate == 0.0 ? 1.0 : rate / base_rate});
  }
  table.print(std::cout, 3);
  std::cout << "\nsummaries bit-for-bit identical across thread counts: "
            << (deterministic ? "yes" : "NO") << "\n";
  return deterministic ? 0 : 1;
}
