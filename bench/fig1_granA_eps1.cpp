/// Figure 1 of the paper: average normalized latency and overhead for CAFT,
/// FTSA and FTBAR over granularity sweep A (0.2..2.0), m = 10, ε = 1, crash
/// runs with 1 failed processor. Panels (a), (b), (c) plus the message table.
#include "figure_main.hpp"

int main() {
  return caft::bench::run_figure_bench(
      caft::figure1(),
      "granularity A in [0.2, 2.0], m=10, eps=1, 1 crash (paper Figure 1)");
}
