/// Figure 4 of the paper: granularity sweep B (1..10), m = 10, ε = 1,
/// 1 crash.
#include "figure_main.hpp"

int main() {
  return caft::bench::run_figure_bench(
      caft::figure4(),
      "granularity B in [1, 10], m=10, eps=1, 1 crash (paper Figure 4)");
}
