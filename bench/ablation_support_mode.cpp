/// Ablation: the central robustness finding of this reproduction.
///
/// The paper's mutual-exclusion locking (equation (7)) operates at the
/// *direct* level: a channel locks its host and its senders' processors.
/// But a sender may itself depend one-to-one on other processors, and a
/// crash set aimed at such a transitively shared supplier breaks several
/// channels at once. This bench quantifies that window — exhaustive ε-subset
/// survival and uniformly drawn crash sets — for the paper's rule (kDirect)
/// against this library's strengthened rule (kTransitive), alongside the
/// performance each rule buys.
#include <iostream>

#include "algo/caft.hpp"
#include "common/table.hpp"
#include "dag/generators.hpp"
#include "exp/config.hpp"
#include "metrics/metrics.hpp"
#include "platform/cost_synthesis.hpp"
#include "sim/resilience.hpp"

int main() {
  using namespace caft;
  const std::size_t reps = bench_reps_from_env(10);
  std::cout << "=== Ablation: equation (7) locking depth — paper rule "
               "(direct) vs provable rule (transitive) ===\n"
            << "m=8, eps=2, exhaustive C(8,2)=28 crash subsets per instance; "
            << reps << " instances\n\n";

  Table table("survival and performance by support mode",
              {"mode", "failing subsets", "subsets tested", "failing draws",
               "draws", "norm. latency", "messages"});
  for (const int mode : {0, 1}) {
    std::size_t failing_subsets = 0, subsets = 0, failing_draws = 0, draws = 0;
    double latency = 0.0, messages = 0.0;
    Rng draw_rng(99);
    for (std::size_t rep = 0; rep < reps; ++rep) {
      Rng rng(500 + rep);
      RandomDagParams dag;
      dag.min_tasks = 30;
      dag.max_tasks = 45;
      const TaskGraph g = random_dag(dag, rng);
      const Platform platform(8);
      CostSynthesisParams params;
      params.granularity = 0.8;
      const CostModel costs = synthesize_costs(g, platform, params, rng);
      CaftOptions options;
      options.base = SchedulerOptions{2, CommModelKind::kOnePort};
      options.support_mode =
          mode == 0 ? CaftSupportMode::kDirect : CaftSupportMode::kTransitive;
      const Schedule sched = caft_schedule(g, platform, costs, options);
      const ResilienceReport report =
          check_resilience_exhaustive(sched, costs, 2);
      failing_subsets += report.failures;
      subsets += report.scenarios_tested;
      for (int d = 0; d < 10; ++d) {
        ++draws;
        if (!simulate_random_crashes(sched, costs, 2, draw_rng).success)
          ++failing_draws;
      }
      latency += normalized_latency(sched.zero_crash_latency(), g, costs);
      messages += static_cast<double>(sched.message_count());
    }
    const auto n = static_cast<double>(reps);
    table.add_row({std::string(mode == 0 ? "direct (paper)" : "transitive"),
                   static_cast<double>(failing_subsets),
                   static_cast<double>(subsets),
                   static_cast<double>(failing_draws),
                   static_cast<double>(draws), latency / n, messages / n});
  }
  table.print(std::cout, 2);
  std::cout
      << "\nExpected shape: the direct rule leaves failing crash subsets on\n"
         "nearly every instance (and loses a fraction of random draws),\n"
         "while the transitive rule fails on none; the guarantee costs a\n"
         "modest amount of messages and latency.\n";
  table.save_csv("ablation_support_mode.csv");
  return 0;
}
