/// Extension (paper Section 7): the batched decision procedure. "Why not
/// consider say, 10 ready tasks, and assign all their replicas in the same
/// decision making procedure?" — CAFT-B opens a priority window of ready
/// tasks and always commits the globally earliest-finishing replica.
/// Sweeps the window size; batch = 1 is exactly CAFT.
#include <iostream>

#include "algo/caft_batch.hpp"
#include "common/table.hpp"
#include "dag/generators.hpp"
#include "exp/config.hpp"
#include "metrics/metrics.hpp"
#include "platform/cost_synthesis.hpp"

int main() {
  using namespace caft;
  const std::size_t reps = bench_reps_from_env(10);
  std::cout << "=== Extension: CAFT-B batched mapping (m=10, granularity "
               "0.5) ===\n"
            << "reps per row: " << reps << "\n\n";

  for (const std::size_t eps : {1u, 3u}) {
    Table table("eps=" + std::to_string(eps),
                {"batch size", "norm. latency", "messages",
                 "latency vs batch=1"});
    double baseline = 0.0;
    for (const std::size_t batch : {1u, 2u, 4u, 6u, 10u, 16u}) {
      double latency = 0.0, messages = 0.0;
      for (std::size_t rep = 0; rep < reps; ++rep) {
        Rng rng(47 + rep);
        const TaskGraph g = random_dag(RandomDagParams{}, rng);
        const Platform platform(10);
        CostSynthesisParams params;
        params.granularity = 0.5;
        const CostModel costs = synthesize_costs(g, platform, params, rng);
        CaftBatchOptions options;
        options.caft.base = SchedulerOptions{eps, CommModelKind::kOnePort};
        options.batch_size = batch;
        const Schedule sched =
            caft_batch_schedule(g, platform, costs, options);
        latency += normalized_latency(sched.zero_crash_latency(), g, costs);
        messages += static_cast<double>(sched.message_count());
      }
      const auto n = static_cast<double>(reps);
      latency /= n;
      messages /= n;
      if (batch == 1) baseline = latency;
      table.add_row({static_cast<double>(batch), latency, messages,
                     latency / baseline});
    }
    table.print(std::cout, 3);
    std::cout << '\n';
  }
  std::cout << "Expected shape: moderate windows shave a few percent off the\n"
               "latency by letting urgent replicas pick lightly loaded\n"
               "processors first; very large windows flatten out.\n";
  return 0;
}
